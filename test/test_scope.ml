(* Tests for the Prscope observability layer: log-bucketed histograms
   (bucket boundaries, merge associativity, deterministic percentiles),
   multi-domain counter/histogram hammering with exact merged totals,
   profile-tree rendering from synthetic traces, Prometheus exposition
   validation, the bench regression comparator, the sweep fan-out
   chunking, and a CLI integration run of `prpart profile`. *)

module T = Prtelemetry
module H = Prtelemetry.Histogram
module S = Prtelemetry.Scope
module Json = Prtelemetry.Json

let fake_clock () =
  let now = ref 0. in
  ((fun () -> !now), fun dt -> now := !now +. dt)

(* A tiny deterministic generator so the property-style tests do not
   depend on global Random state. *)
let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i =
    if i + nn > nh then false
    else String.sub haystack i nn = needle || scan (i + 1)
  in
  scan 0

let lcg seed =
  let state = ref seed in
  fun () ->
    state := (!state * 1103515245) + 12345;
    !state land 0x3FFFFFFF

(* ------------------------------------------------------------ histogram *)

let histogram_tests =
  [ Alcotest.test_case "dead histogram records nothing" `Quick (fun () ->
        Alcotest.(check bool) "not live" false (H.live H.dead);
        H.observe H.dead 1.0;
        Alcotest.(check int) "count" 0 (H.count H.dead);
        Alcotest.(check (float 0.)) "quantile" 0. (H.quantile H.dead 0.5));
    Alcotest.test_case "bucket boundaries bracket every value" `Quick
      (fun () ->
        (* Walk a wide geometric range: each value must land in a bucket
           whose inclusive upper bound is >= the value and whose
           predecessor's bound is < the value. *)
        let v = ref 1e-9 in
        while !v < 1e9 do
          let i = H.index !v in
          Alcotest.(check bool)
            (Printf.sprintf "upper bound of %g" !v)
            true
            (H.upper_bound i >= !v);
          if i > 1 then
            Alcotest.(check bool)
              (Printf.sprintf "lower bound of %g" !v)
              true
              (H.upper_bound (i - 1) < !v);
          v := !v *. 1.37
        done;
        (* The special buckets: non-positive values and +infinity. *)
        Alcotest.(check int) "zero bucket" (H.index 0.) (H.index (-5.));
        Alcotest.(check int) "zero is bucket 0" 0 (H.index 0.);
        Alcotest.(check int) "+inf in top bucket" (H.n_buckets - 1)
          (H.index Float.infinity));
    Alcotest.test_case "bucket index is monotone" `Quick (fun () ->
        let next = lcg 7 in
        for _ = 1 to 1000 do
          let a = float_of_int (next ()) /. 1024. in
          let b = float_of_int (next ()) /. 1024. in
          let lo = Float.min a b and hi = Float.max a b in
          Alcotest.(check bool) "monotone" true (H.index lo <= H.index hi)
        done);
    Alcotest.test_case "single observation is exact" `Quick (fun () ->
        List.iter
          (fun v ->
            let h = H.make () in
            H.observe h v;
            Alcotest.(check (float 0.)) "p50 = value" v (H.quantile h 0.5);
            Alcotest.(check (float 0.)) "max = value" v (H.max_value h);
            Alcotest.(check (float 0.)) "min = value" v (H.min_value h))
          [ 1e-6; 0.25; 1.0; 3.14159; 1234.5 ]);
    Alcotest.test_case "NaN ignored, extrema and sum exact" `Quick (fun () ->
        let h = H.make () in
        H.observe h Float.nan;
        List.iter (H.observe h) [ 2.0; 8.0; 4.0 ];
        Alcotest.(check int) "count" 3 (H.count h);
        Alcotest.(check (float 1e-9)) "sum" 14.0 (H.sum h);
        Alcotest.(check (float 1e-9)) "mean" (14. /. 3.) (H.mean h);
        Alcotest.(check (float 0.)) "min" 2.0 (H.min_value h);
        Alcotest.(check (float 0.)) "max" 8.0 (H.max_value h);
        Alcotest.(check (float 0.)) "p100 = max" 8.0 (H.quantile h 1.0));
    Alcotest.test_case "percentiles are deterministic and ordered" `Quick
      (fun () ->
        let fill () =
          let h = H.make () in
          for i = 1 to 1000 do
            H.observe h (float_of_int i)
          done;
          h
        in
        let a = fill () and b = fill () in
        List.iter
          (fun q ->
            Alcotest.(check (float 0.))
              (Printf.sprintf "q=%.2f reproducible" q)
              (H.quantile a q) (H.quantile b q))
          [ 0.5; 0.9; 0.99; 1.0 ];
        (* Quantiles are within one bucket (12.5 % relative) of the true
           rank statistic, and monotone in q. *)
        let p50 = H.quantile a 0.5
        and p90 = H.quantile a 0.9
        and p99 = H.quantile a 0.99 in
        Alcotest.(check bool) "p50 near 500" true (p50 >= 500. && p50 <= 576.);
        Alcotest.(check bool) "p90 near 900" true (p90 >= 900. && p90 <= 1024.);
        Alcotest.(check bool) "ordered" true (p50 <= p90 && p90 <= p99);
        Alcotest.(check (float 0.)) "p100 is max" 1000. (H.quantile a 1.0));
    Alcotest.test_case "merge is associative and commutative" `Quick
      (fun () ->
        let next = lcg 42 in
        let observations () =
          List.init 200 (fun _ -> float_of_int (next ()) /. 4096.)
        in
        let of_list vs =
          let h = H.make () in
          List.iter (H.observe h) vs;
          h
        in
        let xs = observations ()
        and ys = observations ()
        and zs = observations () in
        let summary h =
          ( H.count h, H.sum h, H.min_value h, H.max_value h, H.buckets h,
            List.map (H.quantile h) [ 0.5; 0.9; 0.99 ] )
        in
        (* (x <- y) <- z *)
        let left = of_list xs in
        H.merge ~into:left (of_list ys);
        H.merge ~into:left (of_list zs);
        (* x <- (y <- z) *)
        let rhs = of_list ys in
        H.merge ~into:rhs (of_list zs);
        let right = of_list xs in
        H.merge ~into:right rhs;
        (* z <- y <- x (commuted) *)
        let commuted = of_list zs in
        H.merge ~into:commuted (of_list ys);
        H.merge ~into:commuted (of_list xs);
        (* one histogram fed everything *)
        let flat = of_list (xs @ ys @ zs) in
        Alcotest.(check bool) "associative" true (summary left = summary right);
        Alcotest.(check bool) "commutative" true
          (summary left = summary commuted);
        Alcotest.(check bool) "equals single-pass" true
          (summary left = summary flat));
    Alcotest.test_case "copy is independent" `Quick (fun () ->
        let h = H.make () in
        H.observe h 1.0;
        let c = H.copy h in
        H.observe h 2.0;
        Alcotest.(check int) "copy unchanged" 1 (H.count c);
        Alcotest.(check int) "original grew" 2 (H.count h)) ]

(* -------------------------------------------- multi-domain determinism *)

(* The satellite property: any number of domains hammering counters and
   histograms on one shared handle — directly and via merged private
   worker handles — must aggregate to exact totals. *)
let prop_domain_hammer =
  QCheck2.Test.make ~name:"N-domain counter hammer merges to exact totals"
    ~count:15
    QCheck2.Gen.(triple (1 -- 4) (1 -- 2000) (1 -- 5))
    (fun (domains, per_domain, by) ->
      let shared = T.create (T.Sink.memory ()) in
      let c = T.counter shared "prop.count" in
      let h = T.histogram shared "prop.ms" in
      let worker () =
        let private_handle = T.create T.Sink.null in
        for i = 1 to per_domain do
          T.Counter.incr ~by c;
          T.incr shared "prop.by_name";
          H.observe h (float_of_int i);
          T.incr private_handle ~by "prop.private"
        done;
        private_handle
      in
      let workers =
        List.map Domain.join
          (List.init domains (fun _ -> Domain.spawn worker))
      in
      List.iter (fun w -> T.merge ~into:shared w) workers;
      let total = domains * per_domain in
      T.Counter.value c = total * by
      && T.counter_value shared "prop.by_name" = total
      && T.counter_value shared "prop.private" = total * by
      && H.count h = total)

let domain_tests =
  [ Alcotest.test_case "N domains hammering one handle, exact totals"
      `Quick (fun () ->
        let t = T.create (T.Sink.memory ()) in
        let domains = 4 and per_domain = 10_000 in
        let c = T.counter t "hammer.count" in
        let h = T.histogram t "hammer.ms" in
        Alcotest.(check bool) "registry histogram live" true (H.live h);
        let worker seed () =
          let next = lcg seed in
          for _ = 1 to per_domain do
            T.Counter.incr c;
            T.incr t ~by:2 "hammer.by_name";
            H.observe h (float_of_int (1 + (next () land 1023)))
          done
        in
        let spawned =
          List.init domains (fun i -> Domain.spawn (worker (i + 1)))
        in
        List.iter Domain.join spawned;
        Alcotest.(check int) "counter exact" (domains * per_domain)
          (T.Counter.value c);
        Alcotest.(check int) "named counter exact"
          (2 * domains * per_domain)
          (T.counter_value t "hammer.by_name");
        Alcotest.(check int) "histogram exact" (domains * per_domain)
          (H.count h));
    Alcotest.test_case "merged worker handles equal one shared handle"
      `Quick (fun () ->
        (* The engine's fan-out pattern: private counting handles folded
           back with Telemetry.merge must aggregate to the same totals
           as one shared handle. *)
        let shared = T.create T.Sink.null in
        let into = T.create T.Sink.null in
        let feed t base =
          T.incr t ~by:base "work.items";
          T.observe t "work.ms" (float_of_int base);
          T.set_gauge t "work.level" (float_of_int base)
        in
        List.iter (feed shared) [ 3; 5; 7 ];
        List.iter
          (fun base ->
            let w = T.create T.Sink.null in
            feed w base;
            T.merge ~into w)
          [ 3; 5; 7 ];
        Alcotest.(check int) "counters" (T.counter_value shared "work.items")
          (T.counter_value into "work.items");
        (* Gauges fill only when absent: the first worker's value wins. *)
        Alcotest.(check (option (float 0.))) "gauge" (Some 3.)
          (T.gauge_value into "work.level")) ]

(* ---------------------------------------------------------- span trees *)

let tree_tests =
  [ Alcotest.test_case "span tree nests, merges and ranks" `Quick (fun () ->
        let clock, advance = fake_clock () in
        let t = T.create ~clock (T.Sink.memory ()) in
        T.with_span t "solve" (fun () ->
            advance 0.010;
            T.with_span t "cluster" (fun () -> advance 0.020);
            T.with_span t "allocate" (fun () -> advance 0.030);
            T.with_span t "allocate" (fun () -> advance 0.050));
        let tree = S.span_tree (T.events t) in
        (match tree with
         | [ root ] ->
           Alcotest.(check string) "root" "solve" root.S.name;
           Alcotest.(check int) "one call" 1 root.S.calls;
           Alcotest.(check (float 1e-9)) "root total" 0.110 root.S.total_s;
           Alcotest.(check (float 1e-9)) "root self" 0.010 (S.self_s root);
           (match root.S.children with
            | [ cl; al ] ->
              Alcotest.(check string) "first child" "cluster" cl.S.name;
              Alcotest.(check string) "merged sibling" "allocate" al.S.name;
              Alcotest.(check int) "merged calls" 2 al.S.calls;
              Alcotest.(check (float 1e-9)) "merged total" 0.080 al.S.total_s
            | children ->
              Alcotest.failf "expected 2 children, got %d"
                (List.length children))
         | forest ->
           Alcotest.failf "expected 1 root, got %d" (List.length forest));
        (* Hot paths rank by self time: allocate 80ms, cluster 20ms,
           solve 10ms. *)
        (match S.hot_paths tree with
         | (n1, _, s1) :: (n2, _, _) :: (n3, _, _) :: _ ->
           Alcotest.(check string) "hottest" "allocate" n1;
           Alcotest.(check (float 1e-9)) "hottest self" 0.080 s1;
           Alcotest.(check string) "second" "cluster" n2;
           Alcotest.(check string) "third" "solve" n3
         | _ -> Alcotest.fail "expected three ranked spans");
        let rendered = S.render_tree tree in
        List.iter
          (fun needle ->
            Alcotest.(check bool)
              (Printf.sprintf "render contains %S" needle)
              true
              (contains rendered needle))
          [ "solve"; "  cluster"; "  allocate"; "100.0%" ]);
    Alcotest.test_case "report on a traced solve has every section" `Quick
      (fun () ->
        let t = T.create (T.Sink.memory ()) in
        let receiver = Prdesign.Design_library.video_receiver in
        (match
           Prcore.Engine.solve ~telemetry:t
             ~target:
               (Prcore.Engine.Budget Prdesign.Design_library.case_study_budget)
             receiver
         with
        | Ok _ -> ()
        | Error m -> Alcotest.failf "case-study solve: %s" m);
        T.flush t;
        let report = S.report t in
        List.iter
          (fun needle ->
            Alcotest.(check bool)
              (Printf.sprintf "report contains %S" needle)
              true
              (contains report needle))
          [ "span tree"; "hot paths"; "span latency percentiles";
            "memo by candidate-set depth"; "per-domain profile";
            "engine.solve" ]);
    Alcotest.test_case "progress curve renders" `Quick (fun () ->
        Alcotest.(check string) "empty" "" (S.render_progress []);
        let rendered = S.render_progress [ (10, 500); (25, 420) ] in
        List.iter
          (fun needle ->
            Alcotest.(check bool)
              (Printf.sprintf "contains %S" needle)
              true
              (contains rendered needle))
          [ "search progress"; "10"; "420" ]) ]

(* ---------------------------------------------------------- exposition *)

let exposition_tests =
  [ Alcotest.test_case "exposition of a live handle validates" `Quick
      (fun () ->
        let clock, advance = fake_clock () in
        let t = T.create ~clock (T.Sink.memory ()) in
        T.incr t ~by:3 "alpha.count";
        T.set_gauge t "beta.level" 2.5;
        T.observe t "gamma.ms" 1.25;
        T.observe t "gamma.ms" 80.0;
        T.with_span t "delta" (fun () -> advance 0.004);
        let page = T.exposition t in
        (match S.check_exposition page with
         | Ok () -> ()
         | Error m -> Alcotest.failf "invalid exposition: %s" m);
        List.iter
          (fun needle ->
            Alcotest.(check bool)
              (Printf.sprintf "page contains %S" needle)
              true
              (contains page needle))
          [ "# TYPE prpart_alpha_count counter"; "prpart_alpha_count 3";
            "prpart_beta_level 2.5"; "prpart_gamma_ms_count 2";
            "le=\"+Inf\""; "prpart_delta_seconds_count 1" ]);
    Alcotest.test_case "validator rejects broken pages" `Quick (fun () ->
        let reject page =
          match S.check_exposition page with
          | Ok () -> Alcotest.failf "accepted invalid page %S" page
          | Error _ -> ()
        in
        (* Non-cumulative buckets. *)
        reject
          "prpart_x_bucket{le=\"1\"} 5\nprpart_x_bucket{le=\"2\"} 3\n\
           prpart_x_bucket{le=\"+Inf\"} 5\nprpart_x_sum 7\nprpart_x_count 5\n";
        (* +Inf bucket disagrees with _count. *)
        reject
          "prpart_x_bucket{le=\"+Inf\"} 4\nprpart_x_sum 7\nprpart_x_count 5\n";
        (* Unparsable sample line. *)
        reject "prpart_x not-a-number\n") ]

(* ------------------------------------------------------------- regress *)

let obj fields = Json.Obj fields

let bench_doc ~moves ~speedup ~hit_rate =
  obj
    [ ( "allocator",
        obj [ ("moves_per_sec", Json.Float moves) ] );
      ("sweep", obj [ ("speedup", Json.Float speedup) ]);
      ("cache", obj [ ("hit_rate", Json.Float hit_rate) ]) ]

let regress_tests =
  [ Alcotest.test_case "flatten produces dotted numeric leaves" `Quick
      (fun () ->
        let doc =
          obj
            [ ("a", obj [ ("b", Json.Int 1); ("c", Json.Float 2.5) ]);
              ("skip", Json.String "text");
              ("list", Json.List [ Json.Int 9 ]);
              ("d", Json.Bool true) ]
        in
        Alcotest.(check (list (pair string (float 0.))))
          "flattened"
          [ ("a.b", 1.); ("a.c", 2.5) ]
          (Experiments.Regress.flatten doc));
    Alcotest.test_case "identical documents are all within" `Quick (fun () ->
        let doc = bench_doc ~moves:2.8e6 ~speedup:1.0 ~hit_rate:0.9 in
        let findings =
          Experiments.Regress.compare ~baseline:doc ~latest:doc ()
        in
        Alcotest.(check int) "three covered metrics" 3 (List.length findings);
        Alcotest.(check int) "no regressions" 0
          (List.length (Experiments.Regress.regressed findings)));
    Alcotest.test_case "synthetic regression fails loudly" `Quick (fun () ->
        let baseline = bench_doc ~moves:2.8e6 ~speedup:1.0 ~hit_rate:0.9 in
        (* Throughput halved: far outside the 30 % tolerance. *)
        let latest = bench_doc ~moves:1.4e6 ~speedup:1.0 ~hit_rate:0.9 in
        let findings =
          Experiments.Regress.compare ~baseline ~latest ()
        in
        (match Experiments.Regress.regressed findings with
         | [ f ] ->
           Alcotest.(check string) "key" "allocator.moves_per_sec" f.key;
           Alcotest.(check bool) "verdict" true
             (f.Experiments.Regress.verdict = Experiments.Regress.Regressed);
           Alcotest.(check (float 0.5)) "change" (-50.) f.change_pct
         | fs -> Alcotest.failf "expected 1 regression, got %d"
                   (List.length fs));
        Alcotest.(check bool) "render flags it" true
          (contains (Experiments.Regress.render findings) "REGRESSED"));
    Alcotest.test_case "improvement and jitter are not regressions" `Quick
      (fun () ->
        let baseline = bench_doc ~moves:2.0e6 ~speedup:1.0 ~hit_rate:0.9 in
        let latest = bench_doc ~moves:3.0e6 ~speedup:1.1 ~hit_rate:0.88 in
        let findings =
          Experiments.Regress.compare ~baseline ~latest ()
        in
        Alcotest.(check int) "no regressions" 0
          (List.length (Experiments.Regress.regressed findings));
        Alcotest.(check bool) "throughput improved" true
          (List.exists
             (fun f ->
               f.Experiments.Regress.verdict = Experiments.Regress.Improved)
             findings));
    Alcotest.test_case "zero-tolerance counters regress from a zero baseline"
      `Quick (fun () ->
        (* chaos.lost_replies / chaos.wrong_replies: baseline 0, any
           worse movement must regress despite the unexpressible
           percentage; a zero latest stays within; and a zero baseline
           under a non-zero tolerance rule stays lenient. *)
        let chaos_doc ~lost ~wrong =
          obj
            [ ( "chaos",
                obj
                  [ ("lost_replies", Json.Int lost);
                    ("wrong_replies", Json.Int wrong) ] ) ]
        in
        let clean = chaos_doc ~lost:0 ~wrong:0 in
        let findings =
          Experiments.Regress.compare ~baseline:clean
            ~latest:(chaos_doc ~lost:1 ~wrong:0) ()
        in
        (match Experiments.Regress.regressed findings with
         | [ f ] ->
           Alcotest.(check string) "key" "chaos.lost_replies"
             f.Experiments.Regress.key
         | fs ->
           Alcotest.failf "expected 1 regression, got %d" (List.length fs));
        Alcotest.(check int) "all-zero latest is clean" 0
          (List.length
             (Experiments.Regress.regressed
                (Experiments.Regress.compare ~baseline:clean ~latest:clean ())));
        let lenient =
          obj [ ("serve", obj [ ("qps", Json.Float 0.) ]) ]
        in
        let worse =
          obj [ ("serve", obj [ ("qps", Json.Float (-1.) ) ]) ]
        in
        Alcotest.(check int) "non-zero tolerance stays lenient at zero base" 0
          (List.length
             (Experiments.Regress.regressed
                (Experiments.Regress.compare ~baseline:lenient ~latest:worse
                   ()))));
    Alcotest.test_case "missing metric is a regression" `Quick (fun () ->
        let baseline = bench_doc ~moves:2.0e6 ~speedup:1.0 ~hit_rate:0.9 in
        let latest = obj [ ("sweep", obj [ ("speedup", Json.Float 1.0) ]) ] in
        let findings =
          Experiments.Regress.compare ~baseline ~latest ()
        in
        let missing =
          List.filter
            (fun f ->
              f.Experiments.Regress.verdict = Experiments.Regress.Missing)
            findings
        in
        Alcotest.(check int) "two missing" 2 (List.length missing);
        Alcotest.(check bool) "regressed includes missing" true
          (List.length (Experiments.Regress.regressed findings) >= 2)) ]

(* ------------------------------------------------------- sweep chunking *)

let chunk_tests =
  [ Alcotest.test_case "chunk covers, orders and balances" `Quick (fun () ->
        let next = lcg 11 in
        for _ = 1 to 100 do
          let n = next () mod 40 and blocks = 1 + (next () mod 12) in
          let xs = List.init n Fun.id in
          let chunks = Experiments.Sweep.chunk ~blocks xs in
          let flattened =
            List.concat_map Array.to_list chunks
          in
          Alcotest.(check (list int)) "order-preserving cover" xs flattened;
          Alcotest.(check bool) "at most blocks" true
            (List.length chunks <= max 1 blocks);
          List.iter
            (fun c ->
              Alcotest.(check bool) "non-empty" true (Array.length c > 0))
            chunks;
          let sizes = List.map Array.length chunks in
          match (sizes, n) with
          | [], 0 -> ()
          | sizes, _ ->
            let lo = List.fold_left min max_int sizes in
            let hi = List.fold_left max 0 sizes in
            Alcotest.(check bool) "balanced" true (hi - lo <= 1)
        done);
    Alcotest.test_case "parallel sweep rows are bit-identical" `Quick
      (fun () ->
        let seq = Experiments.Sweep.run ~count:5 ~jobs:1 () in
        let par = Experiments.Sweep.run ~count:5 ~jobs:4 () in
        Alcotest.(check bool) "identical rows" true (seq = par));
    Alcotest.test_case "traced sweep records per-design latencies" `Quick
      (fun () ->
        let t = T.create (T.Sink.memory ()) in
        let rows = Experiments.Sweep.run ~count:3 ~jobs:1 ~telemetry:t () in
        let h = T.histogram t "sweep.design_ms" in
        Alcotest.(check int) "one sample per row" (List.length rows)
          (H.count h)) ]

(* ----------------------------------------------------------------- CLI *)

let prpart =
  let candidates =
    [ Filename.concat (Filename.concat ".." "bin") "prpart.exe";
      Filename.concat
        (Filename.concat (Filename.concat "_build" "default") "bin")
        "prpart.exe" ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some path -> path
  | None -> List.hd candidates

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let run_prpart args =
  let out = Filename.temp_file "prpart" ".out" in
  let err = Filename.temp_file "prpart" ".err" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove out;
      Sys.remove err)
    (fun () ->
      let status =
        Sys.command (Filename.quote_command prpart ~stdout:out ~stderr:err args)
      in
      (status, read_file out, read_file err))

let cli_tests =
  [ Alcotest.test_case "prpart profile renders the full report" `Quick
      (fun () ->
        let metrics = Filename.temp_file "prpart" ".metrics" in
        Fun.protect
          ~finally:(fun () -> Sys.remove metrics)
          (fun () ->
            let status, out, err =
              run_prpart
                [ "profile"; "video-receiver"; "--jobs"; "2"; "--metrics";
                  metrics ]
            in
            Alcotest.(check int) ("clean exit: " ^ err) 0 status;
            List.iter
              (fun needle ->
                Alcotest.(check bool)
                  (Printf.sprintf "stdout contains %S" needle)
                  true
                  (contains out needle))
              [ "span tree"; "hot paths"; "span latency percentiles";
                "memo by candidate-set depth"; "per-domain profile";
                "engine.solve"; "Best total frames" ];
            (* The exported metrics page must be structurally valid
               Prometheus text. *)
            match S.check_exposition (read_file metrics) with
            | Ok () -> ()
            | Error m -> Alcotest.failf "metrics page invalid: %s" m));
    Alcotest.test_case "prpart profile rejects unknown designs" `Quick
      (fun () ->
        let status, _, err = run_prpart [ "profile"; "no-such-design" ] in
        Alcotest.(check bool) "nonzero exit" true (status <> 0);
        Alcotest.(check bool) "error on stderr" true (String.length err > 0))
  ]

let () =
  Alcotest.run "scope"
    [ ("histogram", histogram_tests);
      ("domains",
        domain_tests @ [ QCheck_alcotest.to_alcotest prop_domain_hammer ]);
      ("tree", tree_tests);
      ("exposition", exposition_tests);
      ("regress", regress_tests);
      ("chunk", chunk_tests);
      ("cli", cli_tests) ]
