(* Tests for the end-to-end tool flow (paper Fig. 2). *)

module Tool_flow = Flow.Tool_flow
module Engine = Prcore.Engine
module Scheme = Prcore.Scheme
module Design_library = Prdesign.Design_library

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i =
    if i + nn > nh then false
    else String.sub haystack i nn = needle || scan (i + 1)
  in
  scan 0

let receiver_report =
  lazy
    (match
       Tool_flow.run
         ~target:(Engine.Budget Design_library.case_study_budget)
         Design_library.video_receiver
     with
     | Ok r -> r
     | Error m -> failwith m)

let flow_tests =
  [ Alcotest.test_case "case study flows end to end" `Quick (fun () ->
        let r = Lazy.force receiver_report in
        Alcotest.(check bool) "wrappers" true (List.length r.wrappers > 0);
        Alcotest.(check (list int)) "fully placed" []
          r.placement.Floorplan.Placer.failed;
        Alcotest.(check bool) "bitstreams" true
          (List.length r.repository.Bitgen.Repository.entries > 0));
    Alcotest.test_case "placement covers regions plus static" `Quick
      (fun () ->
        let r = Lazy.force receiver_report in
        Alcotest.(check int) "demand count"
          (r.outcome.Engine.scheme.Scheme.region_count + 1)
          (Array.length r.placement.Floorplan.Placer.placements));
    Alcotest.test_case "bitstream count = hosted clusters" `Quick (fun () ->
        let r = Lazy.force receiver_report in
        let scheme = r.outcome.Engine.scheme in
        let hosted =
          List.length
            (List.concat
               (List.init scheme.Scheme.region_count
                  (Scheme.region_members scheme)))
        in
        Alcotest.(check int) "entries" hosted
          (List.length r.repository.Bitgen.Repository.entries));
    Alcotest.test_case "summary mentions the device and storage" `Quick
      (fun () ->
        let r = Lazy.force receiver_report in
        let s = Tool_flow.render_summary r in
        Alcotest.(check bool) "device" true
          (contains s r.device.Fpga.Device.name);
        Alcotest.(check bool) "storage" true (contains s "total storage"));
    Alcotest.test_case "auto target flows too" `Quick (fun () ->
        match Tool_flow.run ~target:Engine.Auto Design_library.running_example with
        | Ok r ->
          Alcotest.(check (list int)) "placed" []
            r.placement.Floorplan.Placer.failed
        | Error m -> Alcotest.fail m);
    Alcotest.test_case "infeasible budget is a clean error" `Quick (fun () ->
        match
          Tool_flow.run
            ~target:(Engine.Budget (Fpga.Resource.make 10))
            Design_library.running_example
        with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected an error");
    Alcotest.test_case "feedback disabled turns placement failure into error"
      `Quick (fun () ->
        (* A fragmentation case: region X (200 CLB tiles on a 4x63 LX30)
           must swallow both BRAM columns, leaving region Y's BRAM tile
           unplaceable even though the resource totals fit. The paper
           flags exactly this ("at the time of floorplanning we may find
           ... this [is not] feasible") and proposes the feedback loop. *)
        let res = Fpga.Resource.make in
        let single name r =
          Prdesign.Pmodule.make name [ Prdesign.Mode.make (name ^ "1") r ]
        in
        let fragmented =
          (* Static total (5000 CLBs) exceeds the LX30, so the engine must
             keep X in its own region and merge Y and W into a second
             one; X's rectangle swallows the BRAM columns. *)
          Prdesign.Design.create_exn ~name:"frag"
            ~modules:
              [ single "X" (res 4000);
                single "Y" (res 600 ~bram:1);
                single "W" (res 400) ]
            ~configurations:
              [ Prdesign.Configuration.make "c1" [ (0, 0) ];
                Prdesign.Configuration.make "c2" [ (1, 0) ];
                Prdesign.Configuration.make "c3" [ (2, 0) ] ]
            ()
        in
        let lx30 = Fpga.Device.find_exn "LX30" in
        let options =
          { Tool_flow.default_options with floorplan_feedback = false }
        in
        let target = Engine.Fixed lx30 in
        (match Tool_flow.run ~options ~target fragmented with
         | Error message ->
           Alcotest.(check bool) "mentions floorplan" true
             (contains message "floorplan")
         | Ok _ -> Alcotest.fail "expected a placement failure");
        match Tool_flow.run ~target fragmented with
        | Ok r ->
          Alcotest.(check bool) "escalated" true (r.floorplan_escalations > 0);
          Alcotest.(check bool) "bigger device" true
            (Fpga.Device.compare_capacity r.device lx30 > 0)
        | Error m -> Alcotest.fail m);
    Alcotest.test_case "write_outputs produces the artefacts" `Quick
      (fun () ->
        let dir = Filename.temp_file "prflow" "" in
        Sys.remove dir;
        Fun.protect
          ~finally:(fun () ->
            if Sys.file_exists dir then begin
              Array.iter
                (fun f -> Sys.remove (Filename.concat dir f))
                (Sys.readdir dir);
              Sys.rmdir dir
            end)
          (fun () ->
            let r = Lazy.force receiver_report in
            let written =
              match Tool_flow.write_outputs ~dir r with
              | Ok written -> written
              | Error m -> Alcotest.fail m
            in
            Alcotest.(check bool) "files written" true (List.length written > 10);
            List.iter
              (fun path ->
                Alcotest.(check bool) (path ^ " exists") true
                  (Sys.file_exists path))
              written;
            (* Bitstreams on disk parse back. *)
            let bit =
              List.find (fun p -> Filename.check_suffix p "full.bit") written
            in
            let ic = open_in_bin bit in
            let content =
              Fun.protect
                ~finally:(fun () -> close_in_noerr ic)
                (fun () -> really_input_string ic (in_channel_length ic))
            in
            Alcotest.(check bool) "full.bit parses" true
              (Result.is_ok (Bitgen.Bitstream.parse (Bytes.of_string content)));
            (* The design XML reloads. *)
            let xml =
              List.find (fun p -> Filename.check_suffix p "design.xml") written
            in
            let reloaded = Prdesign.Design_xml.load_file xml in
            Alcotest.(check string) "same design" "video-receiver"
              reloaded.Prdesign.Design.name));
    Alcotest.test_case "write_outputs reports unwritable directories" `Quick
      (fun () ->
        (* A path under a regular file cannot be created: the Sys_error
           must come back as an Error, not an exception. *)
        let file = Filename.temp_file "prflow" ".blocker" in
        Fun.protect
          ~finally:(fun () -> Sys.remove file)
          (fun () ->
            let r = Lazy.force receiver_report in
            match Tool_flow.write_outputs ~dir:(Filename.concat file "out") r with
            | Error _ -> ()
            | Ok _ -> Alcotest.fail "expected an error for an unwritable dir"));
    Alcotest.test_case "live telemetry adds stats and trace artefacts" `Quick
      (fun () ->
        let telemetry = Prtelemetry.create (Prtelemetry.Sink.memory ()) in
        let options = { Tool_flow.default_options with telemetry } in
        match
          Tool_flow.run ~options
            ~target:(Engine.Budget Design_library.case_study_budget)
            Design_library.video_receiver
        with
        | Error m -> Alcotest.fail m
        | Ok r ->
          let s = Tool_flow.render_summary r in
          Alcotest.(check bool) "summary has cost evaluations" true
            (contains s "cost evaluations");
          let dir = Filename.temp_file "prflowtele" "" in
          Sys.remove dir;
          Fun.protect
            ~finally:(fun () ->
              if Sys.file_exists dir then begin
                Array.iter
                  (fun f -> Sys.remove (Filename.concat dir f))
                  (Sys.readdir dir);
                Sys.rmdir dir
              end)
            (fun () ->
              match Tool_flow.write_outputs ~dir r with
              | Error m -> Alcotest.fail m
              | Ok written ->
                let wrote name =
                  List.exists (fun p -> Filename.basename p = name) written
                in
                Alcotest.(check bool) "stats.txt" true (wrote "stats.txt");
                Alcotest.(check bool) "trace.jsonl" true (wrote "trace.jsonl")))
  ]

(* ------------------------------------------------------------------ *)
(* Device escalation: the report field and the telemetry counter must
   come from the same choke point, for every target kind. (They used to
   be maintained separately and could drift.) *)

let escalations_with ~target () =
  let telemetry = Prtelemetry.create (Prtelemetry.Sink.memory ()) in
  let options = { Tool_flow.default_options with telemetry } in
  match Tool_flow.run ~options ~target Design_library.fragmented_filter with
  | Error m -> Alcotest.fail m
  | Ok r ->
    (r.Tool_flow.floorplan_escalations,
     Prtelemetry.counter_value telemetry "flow.floorplan_escalations")

let parity_case name target ~expect_some =
  Alcotest.test_case name `Quick (fun () ->
      let reported, counted = escalations_with ~target () in
      Alcotest.(check int) "report equals counter" counted reported;
      if expect_some then
        Alcotest.(check bool) "escalated at least once" true (reported > 0))

let escalation_tests =
  let lx30 = Fpga.Device.find_exn "LX30" in
  [ parity_case "fixed target: report matches telemetry"
      (Engine.Fixed lx30) ~expect_some:true;
    parity_case "budget target: report matches telemetry"
      (Engine.Budget (Fpga.Device.resources lx30)) ~expect_some:true;
    parity_case "auto target: report matches telemetry" Engine.Auto
      ~expect_some:false ]

(* ------------------------------------------------------------------ *)
(* Placement-aware search: on the fragmentation stress design the aware
   flow lands on the device the unaware flow escalates away from, the
   result is oracle-clean and bit-identical across worker counts. *)

let aware_report ~jobs () =
  let lx30 = Fpga.Device.find_exn "LX30" in
  let telemetry = Prtelemetry.create (Prtelemetry.Sink.memory ()) in
  let options =
    { Tool_flow.default_options with
      placement_aware = true;
      verify = true;
      telemetry;
      jobs }
  in
  match
    Tool_flow.run ~options ~target:(Engine.Fixed lx30)
      Design_library.fragmented_filter
  with
  | Error m -> Alcotest.fail m
  | Ok r -> r

let placement_aware_tests =
  [ Alcotest.test_case "aware flow avoids the escalation" `Quick (fun () ->
        let unaware, _ =
          escalations_with ~target:(Engine.Fixed (Fpga.Device.find_exn "LX30")) ()
        in
        Alcotest.(check bool) "unaware escalates" true (unaware > 0);
        let r = aware_report ~jobs:1 () in
        Alcotest.(check string) "stays on the fixed device" "XC5VLX30"
          r.Tool_flow.device.Fpga.Device.name;
        Alcotest.(check int) "no escalations" 0 r.Tool_flow.floorplan_escalations;
        Alcotest.(check (list int)) "fully placed" []
          r.Tool_flow.placement.Floorplan.Placer.failed;
        (match r.Tool_flow.diagnostics with
         | Some diags ->
           Alcotest.(check bool) "oracle-clean" true
             (Prverify.Diagnostic.ok diags)
         | None -> Alcotest.fail "verify was requested");
        (match r.Tool_flow.outcome.Engine.placement_penalty with
         | Some p -> Alcotest.(check bool) "penalty below crowded band" true
                       (p >= 0 && p < 1 lsl 22)
         | None -> Alcotest.fail "aware outcome must report a penalty");
        Alcotest.(check bool) "aware runs counted" true
          (Prtelemetry.counter_value r.Tool_flow.telemetry
             "flow.placement_aware_runs"
           > 0);
        Alcotest.(check bool) "penalty evaluations counted" true
          (Prtelemetry.counter_value r.Tool_flow.telemetry
             "core.placement_evals"
           > 0));
    Alcotest.test_case "aware flow is identical across jobs" `Quick
      (fun () ->
        let runs = List.map (fun jobs -> aware_report ~jobs ()) [ 1; 2; 4 ] in
        match runs with
        | base :: rest ->
          let describe (r : Tool_flow.report) =
            (Scheme.describe r.outcome.Engine.scheme,
             r.outcome.Engine.evaluation.Prcore.Cost.total_frames,
             r.outcome.Engine.placement_penalty,
             r.device.Fpga.Device.name,
             r.floorplan_escalations)
          in
          List.iteri
            (fun i r ->
              Alcotest.(check bool)
                (Printf.sprintf "jobs run %d matches" (i + 2))
                true
                (describe r = describe base))
            rest
        | [] -> assert false) ]

let () =
  Alcotest.run "flow"
    [ ("tool-flow", flow_tests);
      ("escalation-parity", escalation_tests);
      ("placement-aware", placement_aware_tests) ]
