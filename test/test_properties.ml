(* Randomised cross-validation: properties that check independently
   derived implementations against each other over synthetic designs, so
   a bug in one layer must conspire with a matching bug in another to
   slip through. *)

module Design = Prdesign.Design
module Configuration = Prdesign.Configuration
module Scheme = Prcore.Scheme
module Cost = Prcore.Cost
module Engine = Prcore.Engine
module Resource = Fpga.Resource

let gen_design =
  QCheck2.Gen.(
    map
      (fun seed ->
        let classes = Array.of_list Synth.Generator.all_classes in
        Synth.Generator.generate
          (Synth.Rng.make seed)
          classes.(seed mod Array.length classes)
          ~index:seed)
      (0 -- 20_000))

let solve_auto design =
  match Engine.solve ~target:Engine.Auto design with
  | Ok outcome -> Some outcome
  | Error _ -> None

(* Property 1: the modular scheme's total, computed through the full
   Scheme/Cost machinery, equals a from-scratch reimplementation working
   directly on the design: for each module, frames of its largest mode's
   quantised region times the number of configuration pairs in which the
   module runs two different modes. *)
let prop_modular_total_independent =
  QCheck2.Test.make ~name:"modular total vs independent reimplementation"
    ~count:100 gen_design (fun design ->
      let via_scheme =
        (Cost.evaluate (Scheme.one_module_per_region design)).Cost.total_frames
      in
      let configs = Design.configuration_count design in
      let manual = ref 0 in
      for m = 0 to Design.module_count design - 1 do
        let frames =
          Fpga.Tile.frames_of_resources
            (Prdesign.Pmodule.largest_mode design.Design.modules.(m))
        in
        let mode_in c =
          Configuration.mode_of_module design.Design.configurations.(c) m
        in
        for i = 0 to configs - 1 do
          for j = i + 1 to configs - 1 do
            match (mode_in i, mode_in j) with
            | Some a, Some b when a <> b -> manual := !manual + frames
            | Some _, Some _ | None, _ | _, None -> ()
          done
        done
      done;
      via_scheme = !manual)

(* Property 2: under every engine scheme, each configuration's modes are
   exactly provided by the residents of its regions plus the static
   clusters. *)
let prop_configurations_covered =
  QCheck2.Test.make ~name:"engine scheme covers every configuration"
    ~count:60 gen_design (fun design ->
      match solve_auto design with
      | None -> QCheck2.assume_fail ()
      | Some outcome ->
        let scheme = outcome.Engine.scheme in
        let static_modes =
          List.concat_map
            (fun p -> scheme.Scheme.partitions.(p).Cluster.Base_partition.modes)
            (Scheme.static_members scheme)
        in
        List.for_all
          (fun c ->
            let provided =
              static_modes
              @ List.concat_map
                  (fun r ->
                    match Scheme.active_partition scheme ~config:c ~region:r with
                    | Some p ->
                      scheme.Scheme.partitions.(p).Cluster.Base_partition.modes
                    | None -> [])
                  (List.init scheme.Scheme.region_count Fun.id)
            in
            List.for_all
              (fun mode -> List.mem mode provided)
              (Design.config_mode_ids design c))
          (List.init (Design.configuration_count design) Fun.id))

(* Property 3: a larger budget never yields a worse total. *)
let prop_budget_monotone =
  QCheck2.Test.make ~name:"total time monotone in the budget" ~count:40
    gen_design (fun design ->
      match solve_auto design with
      | None -> QCheck2.assume_fail ()
      | Some outcome ->
        let budget = outcome.Engine.budget in
        let bigger =
          { Resource.clb = budget.Resource.clb * 3 / 2;
            bram = budget.Resource.bram * 3 / 2;
            dsp = budget.Resource.dsp * 3 / 2 }
        in
        (match
           ( Engine.solve ~target:(Engine.Budget budget) design,
             Engine.solve ~target:(Engine.Budget bigger) design )
         with
         | Ok small, Ok large ->
           large.Engine.evaluation.Cost.total_frames
           <= small.Engine.evaluation.Cost.total_frames
         | (Error _ | Ok _), _ -> QCheck2.assume_fail ()))

(* Property 4: scheme XML persistence round-trips engine outputs. *)
let prop_scheme_xml_roundtrip =
  QCheck2.Test.make ~name:"scheme xml round trip on engine outputs"
    ~count:60 gen_design (fun design ->
      match solve_auto design with
      | None -> QCheck2.assume_fail ()
      | Some outcome ->
        let scheme = outcome.Engine.scheme in
        let reloaded =
          Prcore.Scheme_xml.of_string design (Prcore.Scheme_xml.to_string scheme)
        in
        (Cost.evaluate reloaded).Cost.total_frames
        = (Cost.evaluate scheme).Cost.total_frames
        && reloaded.Scheme.region_count = scheme.Scheme.region_count)

(* Property 5: wrapper emission produces one valid Verilog module per
   file (to_verilog validates internally and would raise). *)
let prop_wrappers_valid =
  QCheck2.Test.make ~name:"wrapper emission is valid Verilog" ~count:30
    gen_design (fun design ->
      match solve_auto design with
      | None -> QCheck2.assume_fail ()
      | Some outcome ->
        let files = Hdl.Wrapper.emit_scheme outcome.Engine.scheme in
        files <> []
        && List.for_all
             (fun (name, content) ->
               Filename.check_suffix name ".v" && String.length content > 0)
             files)

(* Property 6: repository storage accounting is self-consistent and every
   bitstream parses back. *)
let prop_repository_consistent =
  QCheck2.Test.make ~name:"bitstream repository self-consistent" ~count:30
    gen_design (fun design ->
      match solve_auto design with
      | None -> QCheck2.assume_fail ()
      | Some outcome ->
        let device =
          match outcome.Engine.device with
          | Some d -> d
          | None -> Fpga.Device.find_exn "FX200T"
        in
        let repo = Bitgen.Repository.build ~device outcome.Engine.scheme in
        let sum =
          List.fold_left
            (fun acc (e : Bitgen.Repository.entry) ->
              acc + Bitgen.Bitstream.size_bytes e.bitstream)
            0 repo.Bitgen.Repository.entries
        in
        sum = Bitgen.Repository.partial_bytes repo
        && List.for_all
             (fun (e : Bitgen.Repository.entry) ->
               Result.is_ok
                 (Bitgen.Bitstream.parse
                    (Bitgen.Bitstream.serialise e.bitstream)))
             repo.Bitgen.Repository.entries)

(* Property 7: traces round-trip through their text format. *)
let prop_trace_roundtrip =
  QCheck2.Test.make ~name:"trace text round trip" ~count:60
    QCheck2.Gen.(pair gen_design (0 -- 10_000))
    (fun (design, seed) ->
      let configs = Design.configuration_count design in
      if configs < 2 then true
      else begin
        let rng = Synth.Rng.make seed in
        let trace =
          Runtime.Trace.record design ~initial:0
            ~sequence:
              (Runtime.Manager.random_walk
                 ~rand:(fun n -> Synth.Rng.int rng n)
                 ~configs ~steps:30 ~initial:0)
        in
        match
          Runtime.Trace.of_string design (Runtime.Trace.to_string design trace)
        with
        | Ok t ->
          t.Runtime.Trace.sequence = trace.Runtime.Trace.sequence
          && t.Runtime.Trace.initial = trace.Runtime.Trace.initial
        | Error _ -> false
      end)

(* Property 8: the worst transition never exceeds the sum of all region
   frame counts (every region reconfigured at once). *)
let prop_worst_bounded =
  QCheck2.Test.make ~name:"worst case bounded by total region frames"
    ~count:60 gen_design (fun design ->
      match solve_auto design with
      | None -> QCheck2.assume_fail ()
      | Some outcome ->
        let e = outcome.Engine.evaluation in
        e.Cost.worst_frames <= Array.fold_left ( + ) 0 e.Cost.region_frames)

(* Property 9: stateful simulation of a tour is bounded by the
   *directional* per-hop rule (a region is charged whenever the target
   configuration needs a resident that differs from the source's,
   including activation from idle). Note the paper's symmetric pairwise
   metric is NOT an upper bound: it treats idle-to-active hops as free,
   while a region woken from idle may hold the wrong bitstream. *)
let prop_tour_bounded_by_directional =
  QCheck2.Test.make
    ~name:"configuration tour bounded by directional per-hop sums" ~count:40
    gen_design (fun design ->
      match solve_auto design with
      | None -> QCheck2.assume_fail ()
      | Some outcome ->
        let scheme = outcome.Engine.scheme in
        let configs = Design.configuration_count design in
        if configs < 2 then true
        else begin
          let tour = List.init configs Fun.id @ [ 0 ] in
          let stats =
            Runtime.Manager.simulate scheme ~initial:0 ~sequence:tour
          in
          let directional_hop i j =
            let cost = ref 0 in
            for r = 0 to scheme.Scheme.region_count - 1 do
              let needed c = Scheme.active_partition scheme ~config:c ~region:r in
              match needed j with
              | None -> ()
              | Some p ->
                if needed i <> Some p then
                  cost := !cost + Scheme.region_frames scheme r
            done;
            !cost
          in
          let bound = ref 0 in
          let prev = ref 0 in
          List.iter
            (fun c ->
              if c <> !prev then bound := !bound + directional_hop !prev c;
              prev := c)
            tour;
          stats.Runtime.Manager.total_frames <= !bound
        end)

(* Property 10: fetch-cache accounting invariants under arbitrary access
   and invalidation streams. Frames are a pure function of the key, as in
   real use (a (region, partition) pair always names the same bitstream). *)
let frames_of_key (r, p) = ((7 * r) + (3 * p) + 5) mod 43

let gen_cache_workload =
  QCheck2.Gen.(
    triple
      (oneofl [ Runtime.Fetch.Lru; Runtime.Fetch.Fifo; Runtime.Fetch.Largest_out ])
      (0 -- 120)
      (list_size (0 -- 120)
         (triple (0 -- 3) (0 -- 5) (* invalidate? *) (frequencyl [ (5, false); (1, true) ]))))

let prop_cache_accounting =
  QCheck2.Test.make ~name:"fetch cache accounting invariants" ~count:300
    gen_cache_workload (fun (policy, capacity, ops) ->
      let cache =
        Runtime.Fetch.create_cache ~policy ~capacity_frames:capacity ()
      in
      List.for_all
        (fun (r, p, invalidate) ->
          let key = (r, p) in
          let was_resident =
            List.mem_assoc key (Runtime.Fetch.residents cache)
          in
          if invalidate then Runtime.Fetch.invalidate cache ~key
          else begin
            let a =
              Runtime.Fetch.access cache Runtime.Fetch.flash ~key
                ~frames:(frames_of_key key)
            in
            (* A hit exactly when the key was already resident. *)
            if a.Runtime.Fetch.hit <> was_resident then
              QCheck2.Test.fail_report "hit flag disagrees with residency"
          end;
          let residents = Runtime.Fetch.residents cache in
          let sum = List.fold_left (fun acc (_, f) -> acc + f) 0 residents in
          (* used = sum of resident frame counts, and never exceeds the
             capacity. *)
          sum = Runtime.Fetch.resident_frames cache
          && sum <= capacity
          && List.length residents
             = List.length (List.sort_uniq compare (List.map fst residents)))
        ops)

(* Property 11: the Largest_out policy always evicts (one of) the largest
   resident entries: every evicted bitstream is at least as large as
   every survivor from before the access. *)
let prop_largest_out_evicts_largest =
  QCheck2.Test.make ~name:"largest-out evicts a largest resident" ~count:300
    QCheck2.Gen.(
      pair (1 -- 120)
        (list_size (1 -- 120) (pair (0 -- 3) (0 -- 5))))
    (fun (capacity, keys) ->
      let cache =
        Runtime.Fetch.create_cache ~policy:Runtime.Fetch.Largest_out
          ~capacity_frames:capacity ()
      in
      List.for_all
        (fun key ->
          let before = Runtime.Fetch.residents cache in
          ignore
            (Runtime.Fetch.access cache Runtime.Fetch.flash ~key
               ~frames:(frames_of_key key));
          let after = Runtime.Fetch.residents cache in
          let evicted =
            List.filter (fun (k, _) -> not (List.mem_assoc k after)) before
          in
          let survivors =
            List.filter (fun (k, _) -> List.mem_assoc k after) before
          in
          List.for_all
            (fun (_, ef) ->
              List.for_all (fun (_, sf) -> ef >= sf) survivors)
            evicted)
        keys)

let () =
  Alcotest.run "cross-validation"
    [ ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_modular_total_independent;
            prop_configurations_covered;
            prop_budget_monotone;
            prop_scheme_xml_roundtrip;
            prop_wrappers_valid;
            prop_repository_consistent;
            prop_trace_roundtrip;
            prop_worst_bounded;
            prop_tour_bounded_by_directional;
            prop_cache_accounting;
            prop_largest_out_evicts_largest ] ) ]
