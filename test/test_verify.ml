(* Tests for the Prverify independent-oracle layer: diagnostics, the
   from-scratch re-derivations against the optimised pipeline, the
   mutation-kill matrix (every oracle provably alive), the differential
   fuzz harness, and the CLI surface (prpart check / fuzz / --verify). *)

module Design = Prdesign.Design
module Design_library = Prdesign.Design_library
module Engine = Prcore.Engine
module Scheme = Prcore.Scheme
module Cost = Prcore.Cost
module Resource = Fpga.Resource
module Diagnostic = Prverify.Diagnostic
module Oracle = Prverify.Oracle
module Checker = Prverify.Checker
module Fuzz = Prverify.Fuzz

(* ------------------------------------------------------------------ *)
(* Diagnostics.                                                        *)

let diagnostic_tests =
  [ Alcotest.test_case "render and classify" `Quick (fun () ->
        let e =
          Diagnostic.error ~code:"V-CVR-001" ~stage:"cover" "missing %s" "m"
        in
        let w = Diagnostic.warning ~code:"V-DSN-004" ~stage:"design" "unused" in
        Alcotest.(check string) "render" "error[V-CVR-001] cover: missing m"
          (Diagnostic.render e);
        Alcotest.(check bool) "is_error" true (Diagnostic.is_error e);
        Alcotest.(check bool) "warning not error" false (Diagnostic.is_error w);
        Alcotest.(check bool) "ok ignores warnings" true (Diagnostic.ok [ w ]);
        Alcotest.(check bool) "ok rejects errors" false (Diagnostic.ok [ e; w ]);
        Alcotest.(check bool) "has_code" true
          (Diagnostic.has_code "V-CVR-001" [ e; w ]);
        Alcotest.(check bool) "has_code misses" false
          (Diagnostic.has_code "V-CVR-002" [ e; w ]));
    Alcotest.test_case "report renders a summary line" `Quick (fun () ->
        Alcotest.(check string) "clean" "verification OK (0 errors, 0 warnings)\n"
          (Diagnostic.render_report []);
        let e =
          Diagnostic.error ~code:"V-CST-001" ~stage:"cost" "t"
        in
        let report = Diagnostic.render_report [ e ] in
        Alcotest.(check bool) "lists the diagnostic" true
          (String.length report > 0
          && Diagnostic.has_code "V-CST-001" [ e ]
          && String.sub report 0 5 = "error")) ]

(* ------------------------------------------------------------------ *)
(* Oracles against the optimised pipeline on the library designs.      *)

let reference_schemes design =
  [ ("single-region", Scheme.single_region design);
    ("one-module-per-region", Scheme.one_module_per_region design);
    ("fully-static", Scheme.fully_static design) ]

let oracle_tests =
  [ Alcotest.test_case "library designs satisfy the design oracle" `Quick
      (fun () ->
        List.iter
          (fun (name, design) ->
            let diagnostics = Oracle.check_design design in
            Alcotest.(check bool) (name ^ " ok") true
              (Diagnostic.ok diagnostics))
          Design_library.all);
    Alcotest.test_case "reference schemes satisfy the covering oracle" `Quick
      (fun () ->
        List.iter
          (fun (name, design) ->
            List.iter
              (fun (label, scheme) ->
                Alcotest.(check bool)
                  (Printf.sprintf "%s %s" name label)
                  true
                  (Diagnostic.ok (Oracle.check_scheme scheme)))
              (reference_schemes design))
          Design_library.all);
    Alcotest.test_case "derive_evaluation matches Cost.evaluate" `Quick
      (fun () ->
        List.iter
          (fun (name, design) ->
            List.iter
              (fun (label, scheme) ->
                let fresh = Cost.evaluate scheme in
                let derived = Oracle.derive_evaluation scheme in
                Alcotest.(check bool)
                  (Printf.sprintf "%s %s" name label)
                  true
                  (Cost.equal_evaluation fresh derived))
              (reference_schemes design))
          Design_library.all);
    Alcotest.test_case "transition_table matches Cost.transition_matrix"
      `Quick (fun () ->
        List.iter
          (fun (name, design) ->
            List.iter
              (fun (label, scheme) ->
                Alcotest.(check bool)
                  (Printf.sprintf "%s %s" name label)
                  true
                  (Oracle.transition_table scheme
                  = Cost.transition_matrix scheme))
              (reference_schemes design))
          Design_library.all);
    Alcotest.test_case "grouping oracle rejects malformed members" `Quick
      (fun () ->
        let design = Design_library.running_example in
        let bad_region =
          [ { Oracle.modes = [ 0 ]; place = Oracle.Region (-1) } ]
        in
        Alcotest.(check bool) "negative region" true
          (Diagnostic.has_code "V-CVR-003"
             (Oracle.check_grouping design bad_region));
        let bad_mode = [ { Oracle.modes = [ 999 ]; place = Oracle.Static } ] in
        Alcotest.(check bool) "mode out of range" true
          (Diagnostic.has_code "V-CVR-003"
             (Oracle.check_grouping design bad_mode));
        let empty = [ { Oracle.modes = []; place = Oracle.Static } ] in
        Alcotest.(check bool) "empty member" true
          (Diagnostic.has_code "V-CVR-003"
             (Oracle.check_grouping design empty)));
    Alcotest.test_case "grouping oracle rejects sparse region numbering"
      `Quick (fun () ->
        let design = Design_library.running_example in
        let sparse =
          List.map
            (fun (m : Oracle.member) ->
              match m.Oracle.place with
              | Oracle.Region r -> { m with Oracle.place = Oracle.Region (r + 1) }
              | Oracle.Static -> m)
            (Oracle.grouping_of_scheme (Scheme.single_region design))
        in
        Alcotest.(check bool) "region 0 empty" true
          (Diagnostic.has_code "V-CVR-002"
             (Oracle.check_grouping design sparse)));
    Alcotest.test_case "budget oracle" `Quick (fun () ->
        let scheme = Scheme.single_region Design_library.video_receiver in
        Alcotest.(check bool) "huge budget ok" true
          (Diagnostic.ok
             (Oracle.check_budget scheme
                ~budget:(Resource.make ~bram:10_000 ~dsp:10_000 1_000_000)));
        Alcotest.(check bool) "tiny budget rejected" true
          (Diagnostic.has_code "V-CST-006"
             (Oracle.check_budget scheme ~budget:(Resource.make 1))));
    Alcotest.test_case "serialised bitstream oracle" `Quick (fun () ->
        let bit =
          Bitgen.Bitstream.generate
            { Bitgen.Bitstream.design = "d";
              variant = "{A1}";
              region = 3;
              far = Bitgen.Bitstream.far_of_origin ~row:1 ~major:2;
              frames = 17 }
        in
        let bytes = Bitgen.Bitstream.serialise bit in
        Alcotest.(check bool) "clean round-trip" true
          (Diagnostic.ok
             (Oracle.check_serialised ~context:"t" ~region:3 ~frames:17
                ~variant:"{A1}" bytes));
        Alcotest.(check bool) "frame mismatch" true
          (Diagnostic.has_code "V-BIT-003"
             (Oracle.check_serialised ~context:"t" ~frames:18 bytes));
        Alcotest.(check bool) "region mismatch" true
          (Diagnostic.has_code "V-BIT-004"
             (Oracle.check_serialised ~context:"t" ~region:4 bytes));
        let corrupt = Bytes.copy bytes in
        Bytes.set corrupt 40 (Char.chr (Char.code (Bytes.get corrupt 40) lxor 1));
        Alcotest.(check bool) "corruption detected" true
          (Diagnostic.has_code "V-BIT-002"
             (Oracle.check_serialised ~context:"t" corrupt))) ]

(* ------------------------------------------------------------------ *)
(* Check-after-solve over the engine and the full tool flow.           *)

let solve_case_study () =
  match
    Engine.solve ~verify:true
      ~target:(Engine.Budget Design_library.case_study_budget)
      Design_library.video_receiver
  with
  | Ok o -> o
  | Error m -> Alcotest.fail m

let engine_tests =
  [ Alcotest.test_case "solve ~verify:true passes on the case study" `Quick
      (fun () ->
        let outcome = solve_case_study () in
        Alcotest.(check bool) "check_outcome ok" true
          (Diagnostic.ok (Checker.check_outcome outcome)));
    Alcotest.test_case "verified solve is identical to the plain one" `Quick
      (fun () ->
        let design = Design_library.video_receiver in
        let target = Engine.Budget Design_library.case_study_budget in
        let plain =
          match Engine.solve ~target design with
          | Ok o -> o
          | Error m -> Alcotest.fail m
        in
        let verified = solve_case_study () in
        Alcotest.(check bool) "same evaluation" true
          (Cost.equal_evaluation plain.Engine.evaluation
             verified.Engine.evaluation);
        Alcotest.(check string) "same scheme"
          (Scheme.describe plain.Engine.scheme)
          (Scheme.describe verified.Engine.scheme));
    Alcotest.test_case "counts verify.* telemetry" `Quick (fun () ->
        let telemetry = Prtelemetry.create Prtelemetry.Sink.null in
        let outcome = solve_case_study () in
        let _ = Checker.check_outcome ~telemetry outcome in
        Prtelemetry.flush telemetry;
        let summary = Prtelemetry.summary telemetry in
        let contains needle =
          let n = String.length needle and h = String.length summary in
          let rec at i = i + n <= h && (String.sub summary i n = needle || at (i + 1)) in
          at 0
        in
        Alcotest.(check bool) "verify.oracles counted" true
          (contains "verify.oracles")) ]

let flow_tests =
  [ Alcotest.test_case "tool flow with verify reports a clean bill" `Quick
      (fun () ->
        let options = { Flow.Tool_flow.default_options with verify = true } in
        match
          Flow.Tool_flow.run ~options
            ~target:(Engine.Budget Design_library.case_study_budget)
            Design_library.video_receiver
        with
        | Error m -> Alcotest.fail m
        | Ok report ->
          (match report.Flow.Tool_flow.diagnostics with
           | None -> Alcotest.fail "verify requested but no diagnostics"
           | Some diagnostics ->
             Alcotest.(check bool) "implementation verifies" true
               (Diagnostic.ok diagnostics));
          (* verify.txt lands next to the other artefacts. *)
          let dir =
            let stamp = Filename.temp_file "prverify" ".d" in
            Sys.remove stamp;
            stamp
          in
          (match Flow.Tool_flow.write_outputs ~dir report with
           | Error m -> Alcotest.fail m
           | Ok written ->
             Alcotest.(check bool) "verify.txt written" true
               (List.exists
                  (fun path -> Filename.basename path = "verify.txt")
                  written);
             List.iter Sys.remove written;
             Sys.rmdir dir));
    Alcotest.test_case "flow without verify records no diagnostics" `Quick
      (fun () ->
        match
          Flow.Tool_flow.run ~target:Engine.Auto Design_library.running_example
        with
        | Error m -> Alcotest.fail m
        | Ok report ->
          Alcotest.(check bool) "diagnostics off" true
            (report.Flow.Tool_flow.diagnostics = None)) ]

(* ------------------------------------------------------------------ *)
(* Mutation kills: every oracle is provably alive.                     *)

let mutation_tests =
  [ Alcotest.test_case "every seeded corruption is killed precisely" `Quick
      (fun () ->
        let kills = Fuzz.mutation_kills () in
        List.iter
          (fun (k : Fuzz.kill) ->
            Alcotest.(check bool)
              (Printf.sprintf "%s fires %s" k.Fuzz.label k.Fuzz.expected)
              true k.Fuzz.killed;
            Alcotest.(check bool)
              (Printf.sprintf "%s fires only %s (got %s)" k.Fuzz.label
                 k.Fuzz.expected
                 (String.concat "," k.Fuzz.codes))
              true k.Fuzz.precise)
          kills;
        Alcotest.(check bool) "all_killed" true (Fuzz.all_killed kills));
    Alcotest.test_case "the issue's four corruption classes are covered"
      `Quick (fun () ->
        let kills = Fuzz.mutation_kills () in
        let expected_of label =
          match
            List.find_opt (fun (k : Fuzz.kill) -> k.Fuzz.label = label) kills
          with
          | Some k -> k.Fuzz.expected
          | None -> Alcotest.fail (label ^ " missing from the kill matrix")
        in
        Alcotest.(check string) "dropped mode" "V-CVR-001"
          (expected_of "drop-covered-mode");
        Alcotest.(check string) "overlapping rects" "V-FLP-001"
          (expected_of "overlap-rects");
        Alcotest.(check string) "flipped frame count" "V-CST-003"
          (expected_of "flip-region-frames");
        Alcotest.(check string) "corrupted CRC byte" "V-BIT-002"
          (expected_of "corrupt-crc")) ]

(* ------------------------------------------------------------------ *)
(* Differential fuzzing.                                               *)

let fuzz_tests =
  [ Alcotest.test_case "200-design differential fuzz runs clean" `Quick
      (fun () ->
        let summary = Fuzz.run ~count:200 ~seed:2013 ~jobs:2 () in
        Alcotest.(check int) "designs" 200 summary.Fuzz.designs;
        Alcotest.(check int) "every design accounted for" 200
          (summary.Fuzz.solved + summary.Fuzz.skipped);
        (match summary.Fuzz.failures with
         | [] -> ()
         | failures -> Alcotest.fail (Fuzz.render_summary { summary with Fuzz.failures }));
        Alcotest.(check bool) "most designs solve" true
          (summary.Fuzz.solved > summary.Fuzz.skipped));
    Alcotest.test_case "fuzzing is deterministic in the seed" `Quick
      (fun () ->
        let a = Fuzz.run ~count:12 ~seed:7 () in
        let b = Fuzz.run ~count:12 ~seed:7 () in
        Alcotest.(check string) "summaries equal" (Fuzz.render_summary a)
          (Fuzz.render_summary b)) ]

(* ------------------------------------------------------------------ *)
(* CLI surface.                                                        *)

let prpart = Filename.concat ".." (Filename.concat "bin" "prpart.exe")

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let run_prpart args =
  let out = Filename.temp_file "prpart" ".out" in
  let err = Filename.temp_file "prpart" ".err" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove out;
      Sys.remove err)
    (fun () ->
      let status =
        Sys.command (Filename.quote_command prpart ~stdout:out ~stderr:err args)
      in
      (status, read_file out, read_file err))

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec at i = i + n <= h && (String.sub haystack i n = needle || at (i + 1)) in
  at 0

let example_designs =
  let dir = Filename.concat ".." (Filename.concat "examples" "designs") in
  List.sort compare
    (List.filter_map
       (fun name ->
         if Filename.check_suffix name ".xml" then
           Some (Filename.concat dir name)
         else None)
       (Array.to_list (Sys.readdir dir)))

let cli_tests =
  [ Alcotest.test_case "prpart check passes every example design" `Quick
      (fun () ->
        Alcotest.(check bool) "example designs exist" true
          (List.length example_designs >= 3);
        List.iter
          (fun path ->
            let status, out, err = run_prpart [ "check"; path ] in
            if status <> 0 then
              Alcotest.fail (Printf.sprintf "%s: %s%s" path out err);
            Alcotest.(check bool) (path ^ " verdict") true
              (contains out "verification OK"))
          example_designs);
    Alcotest.test_case "prpart check passes the built-in designs" `Quick
      (fun () ->
        List.iter
          (fun (name, _) ->
            let status, out, err = run_prpart [ "check"; name ] in
            if status <> 0 then
              Alcotest.fail (Printf.sprintf "%s: %s%s" name out err);
            Alcotest.(check bool) (name ^ " verdict") true
              (contains out "verification OK"))
          Design_library.all);
    Alcotest.test_case "prpart check rejects a malformed design" `Quick
      (fun () ->
        (* A configuration referencing a mode its module does not have
           must be rejected before partitioning even starts (the XML
           loader already refuses it; the oracle is the backstop for
           programmatic designs, so here we check the CLI surfaces the
           loader error as a non-zero exit). *)
        let path = Filename.temp_file "bad-design" ".xml" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            let oc = open_out path in
            output_string oc
              {|<design name="bad"><module name="A"><mode name="A1" clb="10"/></module><configurations><configuration name="c1"><use module="A" mode="A9"/></configuration></configurations></design>|};
            close_out oc;
            let status, _, _ = run_prpart [ "check"; path ] in
            Alcotest.(check bool) "non-zero exit" true (status <> 0)));
    Alcotest.test_case "partition --verify reports the verdict" `Quick
      (fun () ->
        let status, out, _ =
          run_prpart
            [ "partition"; "video-receiver"; "--budget"; "6800,50,150";
              "--verify" ]
        in
        Alcotest.(check int) "exit" 0 status;
        (* The case study carries one benign warning (the zero-area
           recovery mode is used by no configuration), so the verdict is
           "0 errors, N warnings" rather than the bare OK. *)
        Alcotest.(check bool) "verdict line" true
          (contains out "verify: OK" || contains out "verify: 0 errors"));
    Alcotest.test_case "flow --verify embeds the verification section"
      `Quick (fun () ->
        let status, out, _ =
          run_prpart
            [ "flow"; "video-receiver"; "--budget"; "6800,50,150"; "--verify" ]
        in
        Alcotest.(check int) "exit" 0 status;
        Alcotest.(check bool) "verdict line" true
          (contains out "verify: OK" || contains out "verify: 0 errors"));
    Alcotest.test_case "prpart fuzz --kills smoke" `Quick (fun () ->
        let status, out, _ =
          run_prpart [ "fuzz"; "--count"; "5"; "--seed"; "99"; "--kills" ]
        in
        Alcotest.(check int) "exit" 0 status;
        Alcotest.(check bool) "fuzz summary" true (contains out "fuzz: 5 designs");
        Alcotest.(check bool) "kill matrix" true
          (contains out "mutation kills: 9/9 killed precisely")) ]

let () =
  Alcotest.run "verify"
    [ ("diagnostics", diagnostic_tests);
      ("oracles", oracle_tests);
      ("engine", engine_tests);
      ("flow", flow_tests);
      ("mutations", mutation_tests);
      ("fuzz", fuzz_tests);
      ("cli", cli_tests) ]
