(* Prscale tests: the multilevel coarsen->partition->refine backend and
   the Strategy plumbing around it (DESIGN.md §12).

   The QCheck properties pin the backend's contracts: any scheme a
   V-cycle produces is feasible and oracle-clean (the coarsen->uncoarsen
   round trip never fabricates an invalid placement), refinement never
   increases the exactly evaluated cost once feasibility is reached, and
   the engine's multilevel path is bit-identical for any [jobs]. The
   unit tests cover the Strategy name surface, the Memo strategy tag,
   the generator's spec validation, and the optimality gap against the
   exact backend on every library design. *)

module Design = Prdesign.Design
module Design_library = Prdesign.Design_library
module Scheme = Prcore.Scheme
module Cost = Prcore.Cost
module Engine = Prcore.Engine
module Strategy = Prcore.Strategy
module Multilevel = Prcore.Multilevel
module Memo = Prcore.Memo
module Resource = Fpga.Resource
module Generator = Synth.Generator
module Oracle = Prverify.Oracle
module Diagnostic = Prverify.Diagnostic

(* ------------------------------------------------------------------ *)
(* Helpers.                                                            *)

let is_infix ~affix s =
  let n = String.length affix and m = String.length s in
  let rec scan i = i + n <= m && (String.sub s i n = affix || scan (i + 1)) in
  n = 0 || scan 0

(* The bench's huge-class budget rule: [headroom] times the
   one-module-per-region usage — the usage floor of mode-granular
   partitioning, so a feasible packing exists while the budget still
   forces real decisions. *)
let huge_budget ?(headroom = 1.3) design =
  let used =
    (Cost.evaluate (Scheme.one_module_per_region design)).Cost.used
  in
  let scale v = int_of_float (Float.ceil (headroom *. float_of_int v)) in
  Resource.make ~bram:(scale used.Resource.bram)
    ~dsp:(scale used.Resource.dsp)
    (scale used.Resource.clb)

let gen_default_design =
  QCheck2.Gen.(
    map
      (fun seed ->
        let classes = Array.of_list Generator.all_classes in
        Generator.generate
          (Synth.Rng.make seed)
          classes.(seed mod Array.length classes)
          ~index:seed)
      (0 -- 20_000))

(* Small huge-class designs: the population the backend targets, at a
   size where properties run in milliseconds. *)
let gen_huge_design =
  QCheck2.Gen.(
    map
      (fun (seed, modules) -> Generator.huge ~seed ~modules ())
      (pair (0 -- 10_000) (6 -- 16)))

(* ------------------------------------------------------------------ *)
(* Properties.                                                         *)

(* Coarsen -> uncoarsen round trip: whatever scheme a V-cycle returns is
   genuinely feasible for the budget it was given and clean under the
   independent oracle — covering, conflict-freedom and the reported
   region structure all survive the re-derivation. *)
let prop_roundtrip_feasible =
  QCheck2.Test.make ~name:"multilevel scheme is feasible and oracle-clean"
    ~count:60 gen_huge_design (fun design ->
      let budget = huge_budget design in
      match
        Multilevel.allocate ~budget design (Multilevel.nodes design)
      with
      | None -> QCheck2.assume_fail ()
      | Some scheme ->
        let evaluation = Cost.evaluate scheme in
        Cost.fits evaluation ~budget
        && Diagnostic.ok (Oracle.check_scheme scheme)
        && Diagnostic.ok (Oracle.check_budget scheme ~budget))

(* Refinement monotonicity: once the V-cycle reaches feasibility, the
   exactly evaluated total of the returned scheme never exceeds the
   total at first feasibility — every accepted move strictly improved
   the (deficit, total) order. *)
let prop_refinement_monotone =
  QCheck2.Test.make ~name:"refinement never increases the evaluated cost"
    ~count:60 gen_huge_design (fun design ->
      let budget = huge_budget design in
      let scheme, stats =
        Multilevel.allocate_stats ~budget design (Multilevel.nodes design)
      in
      match (stats.Multilevel.first_feasible_total,
             stats.Multilevel.final_total) with
      | Some first, Some final ->
        (* The final total must also be the real evaluated cost. *)
        let evaluated =
          match scheme with
          | Some s -> (Cost.evaluate s).Cost.total_frames
          | None -> -1
        in
        final <= first && evaluated = final
      | None, None -> QCheck2.assume_fail ()
      | Some _, None | None, Some _ -> false)

(* Engine-level determinism: the multilevel strategy is bit-identical
   for any [jobs] (the backend is sequential and runs once). *)
let prop_jobs_bit_identical =
  QCheck2.Test.make ~name:"multilevel solve is bit-identical across jobs"
    ~count:40 gen_default_design (fun design ->
      let solve jobs =
        match
          Engine.solve ~strategy:Strategy.Multilevel ~jobs
            ~target:Engine.Auto design
        with
        | Ok o -> Some o
        | Error _ -> None
      in
      match solve 1 with
      | None -> QCheck2.assume_fail ()
      | Some seq ->
        List.for_all
          (fun jobs ->
            match solve jobs with
            | None -> false
            | Some par ->
              Cost.equal_evaluation seq.Engine.evaluation
                par.Engine.evaluation
              && Scheme.describe seq.Engine.scheme
                 = Scheme.describe par.Engine.scheme)
          [ 2; 4 ])

(* ------------------------------------------------------------------ *)
(* Optimality gap vs the exact backend.                                *)

(* On every small library design the multilevel scheme must land within
   10 % of the exact backend's total (measured gap is <= 2.2 %; the
   bound leaves room for future tuning without masking a step change). *)
let test_gap_vs_exact () =
  List.iter
    (fun (name, design) ->
      let solve strategy =
        match Engine.solve ~strategy ~target:Engine.Auto design with
        | Ok o -> Some o.Engine.evaluation.Cost.total_frames
        | Error _ -> None
      in
      match (solve Strategy.Exact, solve Strategy.Multilevel) with
      | Some exact, Some ml ->
        let gap =
          100. *. float_of_int (ml - exact) /. float_of_int (max 1 exact)
        in
        if gap > 10. then
          Alcotest.failf "%s: multilevel %d vs exact %d (gap %+.1f%% > 10%%)"
            name ml exact gap
      | exact, ml ->
        Alcotest.failf "%s: exact=%s multilevel=%s (both must solve)" name
          (match exact with Some v -> string_of_int v | None -> "-")
          (match ml with Some v -> string_of_int v | None -> "-"))
    Design_library.all

(* ------------------------------------------------------------------ *)
(* Strategy name surface.                                              *)

let test_strategy_names () =
  List.iter
    (fun strategy ->
      match Strategy.of_string (Strategy.to_string strategy) with
      | Ok s -> Alcotest.(check bool) "round-trip" true (s = strategy)
      | Error m -> Alcotest.failf "round-trip failed: %s" m)
    Strategy.all;
  (match Strategy.of_string "ml" with
   | Ok Strategy.Multilevel -> ()
   | Ok _ | Error _ -> Alcotest.fail "\"ml\" must parse as Multilevel");
  (match Strategy.of_string "multi-level" with
   | Ok Strategy.Multilevel -> ()
   | Ok _ | Error _ ->
     Alcotest.fail "\"multi-level\" must parse as Multilevel");
  match Strategy.validate "simulated-annealing-2" with
  | Ok _ -> Alcotest.fail "unknown strategy accepted"
  | Error m ->
    List.iter
      (fun name ->
        if not (is_infix ~affix:name m) then
          Alcotest.failf "error %S does not list %S" m name)
      Strategy.names

(* ------------------------------------------------------------------ *)
(* Memo strategy tag.                                                  *)

let test_memo_tag_no_alias () =
  let exact = Memo.create ~tag:"exact" () in
  let ml = Memo.create ~tag:"multilevel" () in
  let untagged = Memo.create () in
  let key = "scheme-key" in
  Memo.add exact key 1;
  Memo.add ml key 2;
  Memo.add untagged key 3;
  Alcotest.(check (option int)) "exact finds its own" (Some 1)
    (Memo.find exact key);
  Alcotest.(check (option int)) "multilevel finds its own" (Some 2)
    (Memo.find ml key);
  Alcotest.(check (option int)) "untagged finds its own" (Some 3)
    (Memo.find untagged key);
  (* Absorbing differently-tagged tables into one store must keep the
     namespaces apart: each donor's entry stays reachable only under
     its own tag. *)
  let merged = Memo.create ~tag:"multilevel" () in
  Memo.absorb ~into:merged exact;
  Memo.absorb ~into:merged ml;
  Alcotest.(check (option int)) "merged resolves under its own tag"
    (Some 2) (Memo.find merged key);
  Alcotest.(check int) "merged holds both donors" 2 (Memo.length merged);
  Alcotest.(check (option string)) "tag accessor" (Some "multilevel")
    (Memo.tag ml);
  Alcotest.(check (option string)) "untagged accessor" None
    (Memo.tag untagged)

(* ------------------------------------------------------------------ *)
(* Generator hardening and the huge class.                             *)

let expect_spec_error label spec fragment =
  match Generator.validate_spec spec with
  | Ok _ -> Alcotest.failf "%s: invalid spec accepted" label
  | Error m ->
    if not (is_infix ~affix:fragment m) then
      Alcotest.failf "%s: error %S does not mention %S" label m fragment

let test_generator_validation () =
  let ok = Generator.default_spec in
  (match Generator.validate_spec ok with
   | Ok _ -> ()
   | Error m -> Alcotest.failf "default spec rejected: %s" m);
  expect_spec_error "inverted modules"
    { ok with Generator.modules = (5, 2) } "modules";
  expect_spec_error "zero modules"
    { ok with Generator.modules = (0, 3) } "modules";
  expect_spec_error "zero modes" { ok with Generator.modes = (0, 2) } "modes";
  expect_spec_error "inverted clb" { ok with Generator.clb = (400, 25) } "clb";
  expect_spec_error "absence one"
    { ok with Generator.absence_probability = 1.0 } "absence";
  expect_spec_error "absence nan"
    { ok with Generator.absence_probability = Float.nan } "absence";
  expect_spec_error "negative extras"
    { ok with Generator.extra_configs = (-1, 2) } "extra_configs";
  (try
     ignore
       (Generator.generate
          ~spec:{ ok with Generator.modules = (0, 0) }
          (Synth.Rng.make 1) Generator.Logic_intensive ~index:0);
     Alcotest.fail "generate accepted an invalid spec"
   with Invalid_argument _ -> ());
  try
    ignore (Generator.huge ~seed:1 ~modules:0 ());
    Alcotest.fail "huge accepted modules=0"
  with Invalid_argument _ -> ()

let test_huge_class () =
  let d = Generator.huge ~seed:11 ~modules:30 () in
  Alcotest.(check int) "pinned module count" 30 (Design.module_count d);
  let d' = Generator.huge ~seed:11 ~modules:30 () in
  Alcotest.(check string) "deterministic in seed" (Scheme.describe
    (Scheme.one_module_per_region d))
    (Scheme.describe (Scheme.one_module_per_region d'));
  (* Module names beyond the historical six letters switch to "Mn". *)
  let names =
    Array.to_list
      (Array.map (fun m -> m.Prdesign.Pmodule.name) d.Design.modules)
  in
  Alcotest.(check bool) "letter names survive" true
    (List.mem "A" names && List.mem "F" names);
  Alcotest.(check bool) "numbered names appear" true (List.mem "M7" names)

(* ------------------------------------------------------------------ *)
(* Engine integration.                                                 *)

let test_progress_capped () =
  (* The search progress curve is bounded by the fixed sample cap no
     matter how many incumbents the solve records — the curve is only
     collected under a tracing telemetry handle. *)
  let telemetry = Prtelemetry.create (Prtelemetry.Sink.memory ()) in
  match
    Engine.solve ~telemetry ~strategy:Strategy.Anneal
      ~target:(Engine.Budget Design_library.case_study_budget)
      Design_library.video_receiver
  with
  | Error m -> Alcotest.failf "case-study solve failed: %s" m
  | Ok o ->
    let n = List.length o.Engine.search.Engine.progress in
    if n = 0 then Alcotest.fail "tracing solve collected no progress curve";
    if n > 256 then Alcotest.failf "progress curve has %d samples (cap 256)" n

let test_multilevel_rung_ladder () =
  (* A ladder that degrades into multilevel must still solve, and the
     winning rung is reported. *)
  let ladder =
    match Prguard.Ladder.of_string "multilevel,single-region" with
    | Ok l -> l
    | Error m -> Alcotest.failf "ladder parse: %s" m
  in
  let design = Generator.huge ~seed:3 ~modules:10 () in
  match
    Engine.solve ~ladder
      ~budget:(Prguard.Budget.make ~max_evals:10_000 ())
      ~target:(Engine.Budget (huge_budget design))
      design
  with
  | Error m -> Alcotest.failf "ladder solve failed: %s" m
  | Ok o ->
    let evaluation = Cost.evaluate o.Engine.scheme in
    Alcotest.(check bool) "ladder outcome feasible" true
      (Cost.fits evaluation ~budget:o.Engine.budget)

let () =
  Alcotest.run "multilevel"
    [ ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_roundtrip_feasible;
            prop_refinement_monotone;
            prop_jobs_bit_identical ] );
      ( "gap",
        [ Alcotest.test_case "within 10% of exact on the library" `Slow
            test_gap_vs_exact ] );
      ( "strategy",
        [ Alcotest.test_case "name surface" `Quick test_strategy_names ] );
      ( "memo",
        [ Alcotest.test_case "strategy tags never alias" `Quick
            test_memo_tag_no_alias ] );
      ( "generator",
        [ Alcotest.test_case "spec validation" `Quick
            test_generator_validation;
          Alcotest.test_case "huge class" `Quick test_huge_class ] );
      ( "engine",
        [ Alcotest.test_case "progress curve capped" `Quick
            test_progress_capped;
          Alcotest.test_case "multilevel ladder rung" `Quick
            test_multilevel_rung_ladder ] ) ]
