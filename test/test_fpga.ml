(* Tests for the Fpga substrate: resource vectors, tile/frame arithmetic,
   the device catalogue and the ICAP timing model. *)

module Resource = Fpga.Resource
module Tile = Fpga.Tile
module Frame = Fpga.Frame
module Device = Fpga.Device
module Icap = Fpga.Icap

let res ?bram ?dsp clb = Resource.make ?bram ?dsp clb

let resource_eq = Alcotest.testable Resource.pp Resource.equal

let resource_tests =
  [ Alcotest.test_case "make defaults to zero" `Quick (fun () ->
        Alcotest.check resource_eq "zero extras" (res 5)
          { Resource.clb = 5; bram = 0; dsp = 0 });
    Alcotest.test_case "make rejects negatives" `Quick (fun () ->
        Alcotest.check_raises "negative"
          (Invalid_argument "Resource.make: negative component") (fun () ->
            ignore (Resource.make (-1))));
    Alcotest.test_case "add" `Quick (fun () ->
        Alcotest.check resource_eq "sum"
          (res 3 ~bram:3 ~dsp:3)
          (Resource.add (res 1 ~bram:2 ~dsp:3) (res 2 ~bram:1)));
    Alcotest.test_case "sub may go negative" `Quick (fun () ->
        let d = Resource.sub (res 1) (res 2) in
        Alcotest.(check int) "clb" (-1) d.Resource.clb);
    Alcotest.test_case "max is component-wise" `Quick (fun () ->
        Alcotest.check resource_eq "max"
          (res 5 ~bram:7 ~dsp:3)
          (Resource.max (res 5 ~bram:2 ~dsp:3) (res 1 ~bram:7)));
    Alcotest.test_case "sum of empty list" `Quick (fun () ->
        Alcotest.check resource_eq "zero" Resource.zero (Resource.sum []));
    Alcotest.test_case "scale" `Quick (fun () ->
        Alcotest.check resource_eq "times three"
          (res 3 ~bram:6 ~dsp:9)
          (Resource.scale 3 (res 1 ~bram:2 ~dsp:3)));
    Alcotest.test_case "fits within equal" `Quick (fun () ->
        Alcotest.(check bool) "fits" true
          (Resource.fits (res 2 ~bram:2) ~within:(res 2 ~bram:2)));
    Alcotest.test_case "fits fails on one component" `Quick (fun () ->
        Alcotest.(check bool) "no fit" false
          (Resource.fits (res 1 ~dsp:9) ~within:(res 9 ~bram:9 ~dsp:8)));
    Alcotest.test_case "dominates mirrors fits" `Quick (fun () ->
        Alcotest.(check bool) "dominates" true
          (Resource.dominates (res 2 ~bram:1 ~dsp:1) (res 2)));
    Alcotest.test_case "is_zero" `Quick (fun () ->
        Alcotest.(check bool) "zero" true (Resource.is_zero Resource.zero);
        Alcotest.(check bool) "non-zero" false (Resource.is_zero (res 0 ~bram:1)));
    Alcotest.test_case "compare is lexicographic" `Quick (fun () ->
        Alcotest.(check bool) "clb first" true
          (Resource.compare (res 1 ~bram:9 ~dsp:9) (res 2) < 0);
        Alcotest.(check bool) "bram second" true
          (Resource.compare (res 1 ~bram:1) (res 1 ~bram:2) < 0);
        Alcotest.(check bool) "dsp third" true
          (Resource.compare (res 1 ~bram:1 ~dsp:0) (res 1 ~bram:1 ~dsp:1) < 0));
    Alcotest.test_case "total_primitives" `Quick (fun () ->
        Alcotest.(check int) "sum" 6
          (Resource.total_primitives (res 1 ~bram:2 ~dsp:3))) ]

let tile_tests =
  [ Alcotest.test_case "primitives per tile" `Quick (fun () ->
        Alcotest.(check int) "clb" 20 (Tile.primitives_per_tile Clb);
        Alcotest.(check int) "bram" 4 (Tile.primitives_per_tile Bram);
        Alcotest.(check int) "dsp" 8 (Tile.primitives_per_tile Dsp));
    Alcotest.test_case "frames per tile (paper constants)" `Quick (fun () ->
        Alcotest.(check int) "clb" 36 (Tile.frames_per_tile Clb);
        Alcotest.(check int) "bram" 30 (Tile.frames_per_tile Bram);
        Alcotest.(check int) "dsp" 28 (Tile.frames_per_tile Dsp));
    Alcotest.test_case "tiles_for rounds up" `Quick (fun () ->
        Alcotest.(check int) "exact" 1 (Tile.tiles_for Clb 20);
        Alcotest.(check int) "round up" 2 (Tile.tiles_for Clb 21);
        Alcotest.(check int) "zero" 0 (Tile.tiles_for Clb 0);
        Alcotest.(check int) "one bram" 1 (Tile.tiles_for Bram 1));
    Alcotest.test_case "tiles_for rejects negatives" `Quick (fun () ->
        Alcotest.check_raises "negative"
          (Invalid_argument "Tile.tiles_for: negative count") (fun () ->
            ignore (Tile.tiles_for Dsp (-1))));
    Alcotest.test_case "quantize rounds up to whole tiles" `Quick (fun () ->
        Alcotest.check resource_eq "quantized"
          (res 40 ~bram:4 ~dsp:8)
          (Tile.quantize (res 21 ~bram:1 ~dsp:1)));
    Alcotest.test_case "quantize idempotent" `Quick (fun () ->
        let q = Tile.quantize (res 123 ~bram:7 ~dsp:13) in
        Alcotest.check resource_eq "fixpoint" q (Tile.quantize q));
    Alcotest.test_case "frames_of_resources matches paper formula" `Quick
      (fun () ->
        (* 818 CLBs = 41 tiles, 28 DSP = 4 tiles: 41*36 + 4*28 = 1588. *)
        Alcotest.(check int) "F1 filter" 1588
          (Tile.frames_of_resources (res 818 ~dsp:28)));
    Alcotest.test_case "frames_of_resources zero" `Quick (fun () ->
        Alcotest.(check int) "zero" 0 (Tile.frames_of_resources Resource.zero)) ]

let frame_tests =
  [ Alcotest.test_case "frame constants (UG191)" `Quick (fun () ->
        Alcotest.(check int) "words" 41 Frame.words_per_frame;
        Alcotest.(check int) "bits" 1312 Frame.bits_per_frame;
        Alcotest.(check int) "bytes" 164 Frame.bytes_per_frame);
    Alcotest.test_case "bytes_of_frames" `Quick (fun () ->
        Alcotest.(check int) "ten frames" 1640 (Frame.bytes_of_frames 10));
    Alcotest.test_case "negative frames rejected" `Quick (fun () ->
        Alcotest.check_raises "negative"
          (Invalid_argument "Frame: negative frame count") (fun () ->
            ignore (Frame.bits_of_frames (-1)))) ]

let device_tests =
  [ Alcotest.test_case "catalogue is sorted by capacity" `Quick (fun () ->
        let rec ascending = function
          | a :: (b :: _ as rest) ->
            Device.compare_capacity a b < 0 && ascending rest
          | [ _ ] | [] -> true
        in
        Alcotest.(check bool) "ascending" true (ascending Device.catalogue));
    Alcotest.test_case "sweep has the paper's nine devices" `Quick (fun () ->
        Alcotest.(check (list string)) "order"
          [ "LX20T"; "LX30"; "FX30T"; "SX35T"; "FX50T"; "SX70T"; "FX95T";
            "FX130T"; "FX200T" ]
          (List.map (fun (d : Device.t) -> d.short) Device.sweep));
    Alcotest.test_case "resources are tile-consistent" `Quick (fun () ->
        List.iter
          (fun d ->
            let r = Device.resources d in
            Alcotest.(check int) "clb multiple" 0 (r.Resource.clb mod 20);
            Alcotest.(check int) "bram multiple" 0 (r.Resource.bram mod 4);
            Alcotest.(check int) "dsp multiple" 0 (r.Resource.dsp mod 8))
          Device.catalogue);
    Alcotest.test_case "find by short and full name" `Quick (fun () ->
        Alcotest.(check bool) "short" true (Device.find "fx70t" <> None);
        Alcotest.(check bool) "full" true (Device.find "XC5VFX70T" <> None);
        Alcotest.(check bool) "missing" true (Device.find "FX9999" = None));
    Alcotest.test_case "find_exn raises on unknown" `Quick (fun () ->
        Alcotest.check_raises "missing" Not_found (fun () ->
            ignore (Device.find_exn "nope")));
    Alcotest.test_case "smallest_fitting picks the smallest" `Quick (fun () ->
        match Device.smallest_fitting (res 3000) with
        | Some d -> Alcotest.(check string) "lx20t" "LX20T" d.short
        | None -> Alcotest.fail "expected a device");
    Alcotest.test_case "smallest_fitting honours bram" `Quick (fun () ->
        match Device.smallest_fitting (res 1000 ~bram:60) with
        | Some d -> Alcotest.(check string) "fx30t" "FX30T" d.short
        | None -> Alcotest.fail "expected a device");
    Alcotest.test_case "smallest_fitting none for monsters" `Quick (fun () ->
        Alcotest.(check bool) "too big" true
          (Device.smallest_fitting (res 1_000_000) = None));
    Alcotest.test_case "next_larger walks the sweep" `Quick (fun () ->
        let lx20t = Device.find_exn "LX20T" in
        (match Device.next_larger lx20t with
         | Some d -> Alcotest.(check string) "lx30" "LX30" d.short
         | None -> Alcotest.fail "expected a successor");
        let top = Device.find_exn "FX200T" in
        Alcotest.(check bool) "largest has none" true
          (Device.next_larger top = None));
    Alcotest.test_case "total_frames positive and monotone-ish" `Quick
      (fun () ->
        let f d = Device.total_frames (Device.find_exn d) in
        Alcotest.(check bool) "positive" true (f "LX20T" > 0);
        Alcotest.(check bool) "bigger device, more frames" true
          (f "FX200T" > f "LX20T"));
    Alcotest.test_case "total_tiles matches columns" `Quick (fun () ->
        let d = Device.find_exn "LX30" in
        Alcotest.(check int) "tiles" (4 * (60 + 2 + 1)) (Device.total_tiles d))
  ]

let family_tests =
  [ Alcotest.test_case "families expose both catalogues" `Quick (fun () ->
        Alcotest.(check (list string)) "names" [ "virtex5"; "series7" ]
          (List.map fst Device.families);
        Alcotest.(check bool) "virtex5 is the catalogue" true
          (List.assoc "virtex5" Device.families == Device.catalogue);
        Alcotest.(check bool) "series7 is the 7-series list" true
          (List.assoc "series7" Device.families == Device.series7));
    Alcotest.test_case "series7 is sorted and disjoint from virtex5" `Quick
      (fun () ->
        let rec ascending = function
          | a :: (b :: _ as rest) ->
            Device.compare_capacity a b < 0 && ascending rest
          | [ _ ] | [] -> true
        in
        Alcotest.(check bool) "ascending" true (ascending Device.series7);
        List.iter
          (fun (d : Device.t) ->
            Alcotest.(check bool) (d.short ^ " prefixed XC7") true
              (String.length d.name > 3 && String.sub d.name 0 3 = "XC7");
            Alcotest.(check bool) (d.short ^ " not in catalogue") false
              (List.exists
                 (fun (c : Device.t) -> c.name = d.name)
                 Device.catalogue))
          Device.series7);
    Alcotest.test_case "find resolves 7-series names" `Quick (fun () ->
        (match Device.find "A35T" with
         | Some d ->
           Alcotest.(check string) "name" "XC7A35T" d.name;
           Alcotest.(check string) "family" "Artix-7"
             (Device.family_name d.family)
         | None -> Alcotest.fail "A35T should resolve");
        match Device.find "xc7k70t" with
        | Some d ->
          Alcotest.(check string) "family" "Kintex-7"
            (Device.family_name d.family)
        | None -> Alcotest.fail "XC7K70T should resolve");
    Alcotest.test_case "sweep and catalogue stay Virtex-5-only" `Quick
      (fun () ->
        (* The paper's nine-device sweep must not grow new members when
           families are added. *)
        Alcotest.(check int) "sweep size" 9 (List.length Device.sweep);
        Alcotest.(check int) "catalogue size" 10
          (List.length Device.catalogue);
        List.iter
          (fun (d : Device.t) ->
            Alcotest.(check bool) (d.short ^ " is XC5V") true
              (String.sub d.name 0 4 = "XC5V"))
          (Device.sweep @ Device.catalogue));
    Alcotest.test_case "7-series devices floorplan like any other" `Quick
      (fun () ->
        (* The layout/placer stack is family-agnostic: a demand places on
           an Artix part exactly as the columnar model prescribes. *)
        let layout = Floorplan.Layout.make (Device.find_exn "A100T") in
        let demands =
          [| Floorplan.Placer.demand_of_resources (res 500 ~bram:2 ~dsp:4) |]
        in
        let outcome = Floorplan.Placer.place layout demands in
        Alcotest.(check (list int)) "placed" []
          outcome.Floorplan.Placer.failed) ]

let icap_tests =
  [ Alcotest.test_case "default throughput 400 MB/s" `Quick (fun () ->
        Alcotest.(check (float 1.0)) "bytes/s" 400e6
          (Icap.bytes_per_second Icap.default));
    Alcotest.test_case "zero frames cost zero even with overhead" `Quick
      (fun () ->
        let icap = Icap.make ~overhead_s:1e-3 () in
        Alcotest.(check (float 0.)) "free" 0. (Icap.seconds_of_frames icap 0));
    Alcotest.test_case "seconds scale linearly in frames" `Quick (fun () ->
        let t1 = Icap.seconds_of_frames Icap.default 100 in
        let t2 = Icap.seconds_of_frames Icap.default 200 in
        Alcotest.(check (float 1e-12)) "double" (2. *. t1) t2);
    Alcotest.test_case "overhead added once" `Quick (fun () ->
        let icap = Icap.make ~overhead_s:5e-6 () in
        let base = Icap.seconds_of_frames Icap.default 10 in
        Alcotest.(check (float 1e-12)) "plus overhead" (base +. 5e-6)
          (Icap.seconds_of_frames icap 10));
    Alcotest.test_case "narrow port is slower" `Quick (fun () ->
        let narrow = Icap.make ~width_bits:8 () in
        Alcotest.(check bool) "slower" true
          (Icap.seconds_of_frames narrow 10
           > Icap.seconds_of_frames Icap.default 10));
    Alcotest.test_case "derate reduces throughput" `Quick (fun () ->
        let derated = Icap.make ~throughput_derate:0.5 () in
        Alcotest.(check (float 1.0)) "half" 200e6 (Icap.bytes_per_second derated));
    Alcotest.test_case "invalid parameters rejected" `Quick (fun () ->
        let expect_invalid f =
          match f () with
          | exception Invalid_argument _ -> ()
          | _ -> Alcotest.fail "expected Invalid_argument"
        in
        expect_invalid (fun () -> Icap.make ~width_bits:12 ());
        expect_invalid (fun () -> Icap.make ~clock_hz:0. ());
        expect_invalid (fun () -> Icap.make ~overhead_s:(-1.) ());
        expect_invalid (fun () -> Icap.make ~throughput_derate:0. ());
        expect_invalid (fun () -> Icap.make ~throughput_derate:1.5 ()));
    Alcotest.test_case "negative frames rejected" `Quick (fun () ->
        Alcotest.check_raises "negative"
          (Invalid_argument "Icap.seconds_of_frames: negative frames")
          (fun () -> ignore (Icap.seconds_of_frames Icap.default (-1))));
    Alcotest.test_case "frames_per_second consistent" `Quick (fun () ->
        let fps = Icap.frames_per_second Icap.default in
        Alcotest.(check (float 1e-6)) "inverse" 1.
          (fps *. Icap.seconds_of_frames Icap.default 1)) ]

(* Properties. *)
let gen_resource =
  QCheck2.Gen.(
    map3
      (fun clb bram dsp -> Resource.make ~bram ~dsp clb)
      (0 -- 10_000) (0 -- 500) (0 -- 500))

let prop_quantize_dominates =
  QCheck2.Test.make ~name:"quantize r dominates r" ~count:300 gen_resource
    (fun r -> Resource.fits r ~within:(Tile.quantize r))

let prop_frames_monotone =
  QCheck2.Test.make ~name:"frames monotone in resources" ~count:300
    (QCheck2.Gen.pair gen_resource gen_resource) (fun (a, b) ->
      Tile.frames_of_resources (Resource.max a b)
      >= max (Tile.frames_of_resources a) (Tile.frames_of_resources b))

let prop_max_upper_bound =
  QCheck2.Test.make ~name:"max is an upper bound" ~count:300
    (QCheck2.Gen.pair gen_resource gen_resource) (fun (a, b) ->
      let m = Resource.max a b in
      Resource.fits a ~within:m && Resource.fits b ~within:m)

let prop_add_assoc =
  QCheck2.Test.make ~name:"add associative" ~count:300
    (QCheck2.Gen.triple gen_resource gen_resource gen_resource)
    (fun (a, b, c) ->
      Resource.equal
        (Resource.add a (Resource.add b c))
        (Resource.add (Resource.add a b) c))


module Arch = Fpga.Arch

let arch_tests =
  [ Alcotest.test_case "virtex5 matches the Tile constants" `Quick (fun () ->
        List.iter
          (fun kind ->
            let g = Arch.geometry Arch.virtex5 kind in
            Alcotest.(check int) "primitives" (Tile.primitives_per_tile kind)
              g.Arch.primitives_per_tile;
            Alcotest.(check int) "frames" (Tile.frames_per_tile kind)
              g.Arch.frames_per_tile)
          Tile.all_kinds);
    Alcotest.test_case "virtex5 frames agree with Tile" `Quick (fun () ->
        List.iter
          (fun r ->
            Alcotest.(check int) "frames" (Tile.frames_of_resources r)
              (Arch.frames_of_resources Arch.virtex5 r))
          [ res 818 ~dsp:28; res 4700 ~bram:40 ~dsp:65; Resource.zero ]);
    Alcotest.test_case "three families, distinct frame sizes" `Quick
      (fun () ->
        Alcotest.(check int) "families" 3 (List.length Arch.all);
        Alcotest.(check int) "v4 bytes" 164 (Arch.bytes_per_frame Arch.virtex4);
        Alcotest.(check int) "v6 bytes" 324 (Arch.bytes_per_frame Arch.virtex6));
    Alcotest.test_case "virtex6 needs fewer frames for big regions" `Quick
      (fun () ->
        let big = res 4700 ~bram:40 ~dsp:65 in
        Alcotest.(check bool) "fewer" true
          (Arch.frames_of_resources Arch.virtex6 big
           < Arch.frames_of_resources Arch.virtex5 big));
    Alcotest.test_case "bytes_of_resources = frames x frame bytes" `Quick
      (fun () ->
        let r = res 100 ~bram:2 ~dsp:3 in
        List.iter
          (fun arch ->
            Alcotest.(check int) arch.Arch.name
              (Arch.frames_of_resources arch r * Arch.bytes_per_frame arch)
              (Arch.bytes_of_resources arch r))
          Arch.all);
    Alcotest.test_case "negative resources rejected" `Quick (fun () ->
        let bad = Resource.sub (res 0) (res 1) in
        match Arch.frames_of_resources Arch.virtex4 bad with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument") ]

let () =
  Alcotest.run "fpga"
    [ ("resource", resource_tests);
      ("tile", tile_tests);
      ("frame", frame_tests);
      ("device", device_tests);
      ("family", family_tests);
      ("icap", icap_tests);
      ("arch", arch_tests);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_quantize_dominates; prop_frames_monotone;
            prop_max_upper_bound; prop_add_assoc ] ) ]
