lib/cluster/base_partition.mli: Format Fpga Prdesign
