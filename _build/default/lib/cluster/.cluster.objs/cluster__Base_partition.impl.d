lib/cluster/base_partition.ml: Format Fpga Int List Prdesign String
