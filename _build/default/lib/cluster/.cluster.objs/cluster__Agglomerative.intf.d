lib/cluster/agglomerative.mli: Base_partition Prdesign Prtelemetry
