lib/cluster/agglomerative.ml: Base_partition List Prdesign Prgraph Prtelemetry
