(** A base partition: a cluster of modes that occur together in at least
    one configuration and are therefore implemented {e simultaneously}
    when loaded into a region (paper §IV-C). Its area is the sum of its
    modes' areas; its frequency weight measures how often the whole
    cluster occurs across the configurations. *)

type t = private {
  modes : int list;  (** Flat mode ids, ascending, non-empty, no dupes. *)
  freq : int;  (** Frequency weight. *)
  resources : Fpga.Resource.t;  (** Sum of the member modes' resources. *)
  frames : int;
      (** Tile-quantised configuration size of a region holding exactly
          this cluster (paper eq. 1/6). *)
}

val make : Prdesign.Design.t -> modes:int list -> freq:int -> t
(** @raise Invalid_argument on an empty, unsorted or duplicated mode list,
    a mode id out of range, or a non-positive frequency. *)

val cardinal : t -> int
val mem : int -> t -> bool
val equal_modes : t -> t -> bool

val overlaps : t -> t -> bool
(** True when the two clusters share a mode. *)

val compare_priority : t -> t -> int
(** The paper's covering-list order: ascending mode count, then ascending
    frequency weight, then ascending area (frames), then mode ids as a
    deterministic tiebreak. *)

val label : Prdesign.Design.t -> t -> string
(** E.g. ["{A3, B2}"] using {!Prdesign.Design.mode_label} names. *)

val pp : Prdesign.Design.t -> Format.formatter -> t -> unit
