module Design = Prdesign.Design

type t = {
  modes : int list;
  freq : int;
  resources : Fpga.Resource.t;
  frames : int;
}

let make design ~modes ~freq =
  if modes = [] then invalid_arg "Base_partition.make: empty mode list";
  if freq <= 0 then invalid_arg "Base_partition.make: non-positive frequency";
  let rec check_sorted = function
    | a :: (b :: _ as rest) ->
      if a >= b then
        invalid_arg "Base_partition.make: modes must be strictly ascending";
      check_sorted rest
    | [ _ ] | [] -> ()
  in
  check_sorted modes;
  let resources =
    Fpga.Resource.sum (List.map (Design.mode_resources design) modes)
  in
  { modes; freq; resources; frames = Fpga.Tile.frames_of_resources resources }

let cardinal t = List.length t.modes
let mem mode t = List.mem mode t.modes
let equal_modes a b = a.modes = b.modes
let overlaps a b = List.exists (fun m -> List.mem m b.modes) a.modes

let compare_priority a b =
  match Int.compare (cardinal a) (cardinal b) with
  | 0 -> (
    match Int.compare a.freq b.freq with
    | 0 -> (
      match Int.compare a.frames b.frames with
      | 0 -> compare a.modes b.modes
      | c -> c)
    | c -> c)
  | c -> c

let label design t =
  "{" ^ String.concat ", " (List.map (Design.mode_label design) t.modes) ^ "}"

let pp design ppf t =
  Format.fprintf ppf "%s (freq %d, %d frames)" (label design t) t.freq t.frames
