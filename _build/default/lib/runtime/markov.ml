type t = { p : float array array }

let make p =
  let n = Array.length p in
  if n = 0 then Error "empty matrix"
  else begin
    let issue = ref None in
    Array.iteri
      (fun i row ->
        if Array.length row <> n then
          issue := Some (Printf.sprintf "row %d is not length %d" i n)
        else begin
          let sum = Array.fold_left ( +. ) 0. row in
          if Array.exists (fun v -> v < 0.) row then
            issue := Some (Printf.sprintf "row %d has a negative entry" i)
          else if Float.abs (sum -. 1.) > 1e-9 then
            issue := Some (Printf.sprintf "row %d sums to %g, not 1" i sum)
        end)
      p;
    match !issue with
    | Some message -> Error message
    | None -> Ok { p = Array.map Array.copy p }
  end

let make_exn p =
  match make p with
  | Ok t -> t
  | Error message -> invalid_arg ("Markov.make: " ^ message)

let uniform ~configs =
  if configs < 2 then invalid_arg "Markov.uniform: need >= 2 configurations";
  let off = 1. /. float_of_int (configs - 1) in
  { p =
      Array.init configs (fun i ->
          Array.init configs (fun j -> if i = j then 0. else off)) }

let random ~rand ?(concentration = 3.) ~configs () =
  if configs < 2 then invalid_arg "Markov.random: need >= 2 configurations";
  let p =
    Array.init configs (fun i ->
        let weights =
          Array.init configs (fun j ->
              if i = j then 0.
              else Float.pow (max 1e-9 (rand ())) concentration +. 1e-9)
        in
        let total = Array.fold_left ( +. ) 0. weights in
        Array.map (fun w -> w /. total) weights)
  in
  { p }

let configs t = Array.length t.p

let check t i =
  if i < 0 || i >= configs t then
    invalid_arg "Markov: configuration index out of range"

let probability t ~from ~into =
  check t from;
  check t into;
  t.p.(from).(into)

let stationary ?(iterations = 10_000) ?(epsilon = 1e-12) t =
  let n = configs t in
  let pi = Array.make n (1. /. float_of_int n) in
  let next = Array.make n 0. in
  let rec iterate k =
    if k = 0 then pi
    else begin
      Array.fill next 0 n 0.;
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          next.(j) <- next.(j) +. (pi.(i) *. t.p.(i).(j))
        done
      done;
      let delta = ref 0. in
      for j = 0 to n - 1 do
        delta := !delta +. Float.abs (next.(j) -. pi.(j));
        pi.(j) <- next.(j)
      done;
      if !delta < epsilon then pi else iterate (k - 1)
    end
  in
  Array.copy (iterate iterations)

let edge_rates t =
  let n = configs t in
  let pi = stationary t in
  Array.init n (fun i ->
      Array.init n (fun j -> if i = j then 0. else pi.(i) *. t.p.(i).(j)))

let expected_frames_per_step t ~frames =
  let rates = edge_rates t in
  let n = configs t in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then acc := !acc +. (rates.(i).(j) *. float_of_int (frames i j))
    done
  done;
  !acc

let pp ppf t =
  let n = configs t in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      Format.fprintf ppf "%s%.3f" (if j = 0 then "" else " ") t.p.(i).(j)
    done;
    Format.pp_print_newline ppf ()
  done
