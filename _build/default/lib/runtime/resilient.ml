module Scheme = Prcore.Scheme
module Design = Prdesign.Design
module Injector = Prfault.Injector
module Recovery = Prfault.Recovery
module Reliability = Prfault.Reliability

type config = {
  spec : Injector.spec;
  policy : Recovery.policy;
  retry : Recovery.retry;
  safe_config : int option;
}

let default_config =
  { spec = Injector.disabled;
    policy = Recovery.Fallback_safe_config;
    retry = Recovery.default_retry;
    safe_config = None }

type outcome = {
  stats : Manager.stats;
  fetch : Fetch.report option;
  reliability : Reliability.summary;
  final_config : int;
  operations : int;
}

type failure = {
  failed_step : int;
  failed_region : int;
  kind : Injector.kind;
  reliability : Reliability.summary;
}

let render_failure f =
  Printf.sprintf "reconfiguration failed at step %d (PRR%d, %s)" f.failed_step
    (f.failed_region + 1)
    (Injector.kind_name f.kind)

(* Internal unwind for the Abort / Retry_then_fail policies. *)
exception Abort_run of int * int * Injector.kind  (* step, region, kind *)

(* A region's content after an aborted programming pass or an SEU is
   garbage: no valid partition. Any future need forces a reload. *)
let corrupt = -1

let simulate ?(icap = Fpga.Icap.default) ?memory ?cache ?(trace = fun _ -> ())
    ?(telemetry = Prtelemetry.null) ?(fault = default_config)
    (scheme : Scheme.t) ~initial ~sequence =
  (match Recovery.validate_retry fault.retry with
   | Ok () -> ()
   | Error message -> invalid_arg ("Resilient.simulate: " ^ message));
  let configs = Design.configuration_count scheme.Scheme.design in
  let check what c =
    if c < 0 || c >= configs then
      invalid_arg
        (Printf.sprintf
           "Resilient.simulate: %s configuration %d out of range [0, %d)"
           what c configs)
  in
  check "initial" initial;
  List.iter (check "sequence") sequence;
  let safe =
    match fault.safe_config with
    | Some c ->
      check "safe" c;
      c
    | None -> initial
  in
  let injector = Injector.start fault.spec in
  Prtelemetry.with_span telemetry "runtime.resilient"
    ~attrs:
      [ ("design", Prtelemetry.Json.String scheme.Scheme.design.Design.name);
        ("steps", Prtelemetry.Json.Int (List.length sequence));
        ( "policy",
          Prtelemetry.Json.String (Recovery.policy_name fault.policy) ) ]
  @@ fun () ->
  let step_c = Prtelemetry.counter telemetry "runtime.steps" in
  let transition_c = Prtelemetry.counter telemetry "runtime.transitions" in
  let frame_c = Prtelemetry.counter telemetry "runtime.frames" in
  let injected_c = Prtelemetry.counter telemetry "fault.injected" in
  let retries_c = Prtelemetry.counter telemetry "fault.retries" in
  let recovered_c = Prtelemetry.counter telemetry "fault.recovered" in
  let dropped_c = Prtelemetry.counter telemetry "fault.dropped_transitions" in
  let fallback_c = Prtelemetry.counter telemetry "fault.fallbacks" in
  let regions = scheme.Scheme.region_count in
  let resident = Array.init regions (Manager.initial_resident scheme ~initial) in
  let rel = Reliability.create ~regions in
  (* Manager-style logical accounting. *)
  let region_loads = Array.make regions 0 in
  let current = ref initial in
  let step = ref 0 in
  let transitions = ref 0 in
  let total_frames = ref 0 in
  let total_seconds = ref 0. in
  let max_frames = ref 0 in
  (* Fetch-style physical accounting (mirrors Fetch.simulate_walk). *)
  let reconfigurations = ref 0 in
  let hits = ref 0 in
  let misses = ref 0 in
  let icap_time = ref 0. in
  let fetch_time = ref 0. in
  (* One fetch through the cache/memory hierarchy. Returns the stall and
     whether the bitstream crossed the external bus (cache hits stream
     from on-chip BRAM, so external-fetch faults cannot apply). *)
  let fetch_stall key frames =
    match memory with
    | None -> (0., false)
    | Some mem -> (
      match cache with
      | None ->
        incr misses;
        (Fetch.fetch_seconds mem ~frames, true)
      | Some c ->
        let a = Fetch.access c mem ~key ~frames in
        if a.Fetch.hit then incr hits else incr misses;
        (a.Fetch.seconds, not a.Fetch.hit))
  in
  let budget_blown elapsed =
    match fault.retry.transition_budget_s with
    | None -> false
    | Some b -> !elapsed >= b
  in
  let on_fault ~step ~region ~attempt kind =
    Reliability.record_fault rel kind ~region;
    Prtelemetry.Counter.incr injected_c;
    if Prtelemetry.tracing telemetry then
      Prtelemetry.point telemetry "fault.inject"
        ~attrs:
          [ ("step", Prtelemetry.Json.Int step);
            ("region", Prtelemetry.Json.Int region);
            ("kind", Prtelemetry.Json.String (Injector.kind_name kind));
            ("attempt", Prtelemetry.Json.Int attempt) ];
    if fault.policy = Recovery.Abort then
      raise (Abort_run (step, region, kind))
  in
  (* After a faulted attempt [n]: give up, or back off and signal a
     retry. *)
  let retry_or_give_up ~elapsed n kind =
    if n >= fault.retry.max_attempts then `Gave_up kind
    else if budget_blown elapsed then begin
      Reliability.record_budget_exhausted rel;
      `Gave_up kind
    end
    else begin
      Reliability.record_retry rel;
      Prtelemetry.Counter.incr retries_c;
      let backoff =
        Recovery.backoff_seconds fault.retry ~attempt:n
          ~unit_jitter:(Injector.jitter injector)
      in
      Reliability.record_backoff rel backoff;
      elapsed := !elapsed +. backoff;
      `Retry
    end
  in
  (* The resilient load loop for one region: fetch, program, recover. *)
  let load_region ~step r needed ~elapsed =
    let frames = Scheme.region_frames scheme r in
    let key = (r, needed) in
    let rec attempt n ~faulted =
      let stall, external_fetch = fetch_stall key frames in
      fetch_time := !fetch_time +. stall;
      elapsed := !elapsed +. stall;
      let fetch_fault =
        if external_fetch then Injector.draw injector Injector.Fetch_op
        else None
      in
      match fetch_fault with
      | Some kind ->
        (* Nothing usable arrived: a timed-out fetch delivered nothing,
           a corrupt image fails its CRC. Either way the cache copy
           inserted by the miss is invalid. *)
        on_fault ~step ~region:r ~attempt:n kind;
        (match cache with
         | Some c -> Fetch.invalidate c ~key
         | None -> ());
        Reliability.record_wasted rel stall;
        (match retry_or_give_up ~elapsed n kind with
         | `Gave_up kind -> `Gave_up kind
         | `Retry -> attempt (n + 1) ~faulted:true)
      | None -> (
        match Injector.draw injector Injector.Program_op with
        | None ->
          let icap_s = Fpga.Icap.seconds_of_frames icap frames in
          icap_time := !icap_time +. icap_s;
          elapsed := !elapsed +. icap_s;
          incr reconfigurations;
          if faulted then begin
            Reliability.record_recovered rel;
            Prtelemetry.Counter.incr recovered_c
          end;
          `Loaded
        | Some Injector.Device_busy ->
          (* Port busy: nothing streamed, no ICAP time burnt. *)
          on_fault ~step ~region:r ~attempt:n Injector.Device_busy;
          (match retry_or_give_up ~elapsed n Injector.Device_busy with
           | `Gave_up kind -> `Gave_up kind
           | `Retry -> attempt (n + 1) ~faulted:true)
        | Some ((Injector.Icap_crc_error | Injector.Seu_upset) as kind) ->
          (* Programming started (or completed, then was upset): the
             ICAP time is burnt and the region now holds garbage. *)
          let icap_s = Fpga.Icap.seconds_of_frames icap frames in
          icap_time := !icap_time +. icap_s;
          elapsed := !elapsed +. icap_s;
          resident.(r) <- corrupt;
          on_fault ~step ~region:r ~attempt:n kind;
          Reliability.record_wasted rel icap_s;
          (match retry_or_give_up ~elapsed n kind with
           | `Gave_up kind -> `Gave_up kind
           | `Retry -> attempt (n + 1) ~faulted:true)
        | Some ((Injector.Fetch_timeout | Injector.Corrupt_bitstream) as k) ->
          (* The injector never answers a Program_op with a fetch kind. *)
          invalid_arg
            (Printf.sprintf
               "Resilient.simulate: injector returned %s for a program \
                operation"
               (Injector.kind_name k)))
    in
    attempt 1 ~faulted:false
  in
  let run () =
    List.iter
      (fun target ->
        incr step;
        Prtelemetry.Counter.incr step_c;
        let from = !current in
        let elapsed = ref 0. in
        let reconfigured = ref [] in
        let step_frames = ref 0 in
        let loaded r needed =
          resident.(r) <- needed;
          region_loads.(r) <- region_loads.(r) + 1;
          reconfigured := r :: !reconfigured;
          step_frames := !step_frames + Scheme.region_frames scheme r
        in
        if target <> !current then begin
          incr transitions;
          Prtelemetry.Counter.incr transition_c;
          (* Bring every region the target uses up to date, in ascending
             order (the order Fetch.simulate_walk replays). *)
          let rec go r =
            if r >= regions then `Done
            else
              match Scheme.active_partition scheme ~config:target ~region:r with
              | None -> go (r + 1)
              | Some needed when resident.(r) = needed -> go (r + 1)
              | Some needed -> (
                match load_region ~step:!step r needed ~elapsed with
                | `Loaded ->
                  loaded r needed;
                  go (r + 1)
                | `Gave_up kind ->
                  Reliability.record_failed_load rel;
                  (match fault.policy with
                   | Recovery.Abort | Recovery.Retry_then_fail ->
                     raise (Abort_run (!step, r, kind))
                   | Recovery.Skip_transition -> `Skipped
                   | Recovery.Fallback_safe_config -> `Fallback))
          in
          match go 0 with
          | `Done -> current := target
          | `Skipped ->
            (* Drop the adaptation step: stay in the old configuration.
               Regions already reprogrammed keep their new content, as
               on real fabric. *)
            Reliability.record_dropped_transition rel;
            Prtelemetry.Counter.incr dropped_c
          | `Fallback ->
            (* Degrade to the safe configuration, best effort: a region
               whose safe load also fails is left garbage and will be
               reloaded whenever next needed. *)
            Reliability.record_fallback rel;
            Prtelemetry.Counter.incr fallback_c;
            for r = 0 to regions - 1 do
              match Scheme.active_partition scheme ~config:safe ~region:r with
              | None -> ()
              | Some needed when resident.(r) = needed -> ()
              | Some needed -> (
                match load_region ~step:!step r needed ~elapsed with
                | `Loaded -> loaded r needed
                | `Gave_up _ ->
                  Reliability.record_failed_load rel;
                  resident.(r) <- corrupt)
            done;
            current := safe
        end;
        let seconds = Fpga.Icap.seconds_of_frames icap !step_frames in
        total_frames := !total_frames + !step_frames;
        total_seconds := !total_seconds +. seconds;
        if !step_frames > !max_frames then max_frames := !step_frames;
        Prtelemetry.Counter.incr frame_c ~by:!step_frames;
        if Prtelemetry.tracing telemetry && target <> from then
          Prtelemetry.point telemetry "runtime.transition"
            ~attrs:
              [ ("step", Prtelemetry.Json.Int !step);
                ("from", Prtelemetry.Json.Int from);
                ("to", Prtelemetry.Json.Int target);
                ( "regions",
                  Prtelemetry.Json.Int (List.length !reconfigured) );
                ("frames", Prtelemetry.Json.Int !step_frames) ];
        trace
          { Manager.step = !step;
            from_config = from;
            to_config = target;
            regions_reconfigured = List.rev !reconfigured;
            frames = !step_frames;
            seconds })
      sequence
  in
  let aborted =
    match run () with
    | () -> None
    | exception Abort_run (s, r, kind) ->
      Reliability.mark_incomplete rel;
      Some (s, r, kind)
  in
  let summary = Reliability.snapshot rel in
  Prtelemetry.set_gauge telemetry "runtime.total_seconds" !total_seconds;
  Prtelemetry.set_gauge telemetry "fault.added_seconds"
    summary.Reliability.added_seconds;
  Prtelemetry.set_gauge telemetry "fault.mttr_seconds"
    summary.Reliability.mttr_seconds;
  match aborted with
  | Some (failed_step, failed_region, kind) ->
    Error { failed_step; failed_region; kind; reliability = summary }
  | None ->
    let stats =
      { Manager.steps = !step;
        transitions = !transitions;
        total_frames = !total_frames;
        total_seconds = !total_seconds;
        max_frames = !max_frames;
        mean_frames =
          (if !transitions = 0 then 0.
           else float_of_int !total_frames /. float_of_int !transitions);
        region_loads }
    in
    let fetch =
      match memory with
      | None -> None
      | Some _ ->
        Some
          { Fetch.reconfigurations = !reconfigurations;
            hits = !hits;
            misses = !misses;
            icap_seconds = !icap_time;
            fetch_seconds = !fetch_time;
            total_seconds = !icap_time +. !fetch_time }
    in
    Ok
      { stats;
        fetch;
        reliability = summary;
        final_config = !current;
        operations = Injector.operations injector }
