(** Configuration-manager simulation: replay an adaptation sequence over a
    partitioned system, tracking actual region contents (a region keeps
    its bitstream while unused, so a reconfiguration happens only when an
    incoming configuration needs a {e different} resident than the one
    physically loaded). This is the stateful ground truth against which
    the paper's pairwise metric is a proxy. *)

type event = {
  step : int;
  from_config : int;
  to_config : int;
  regions_reconfigured : int list;
  frames : int;
  seconds : float;
}

type stats = {
  steps : int;
  transitions : int;  (** Steps with an actual configuration change. *)
  total_frames : int;
  total_seconds : float;
  max_frames : int;
  mean_frames : float;  (** Per transition; 0 when no transitions. *)
  region_loads : int array;  (** Reconfiguration count per region. *)
}

val initial_resident : Prcore.Scheme.t -> initial:int -> int -> int
(** The partition the initial full bitstream leaves in a region: the
    active partition when [initial] uses the region, else the region's
    first-listed partition. {!Resilient.simulate} shares this rule so
    both runtimes start from identical fabric state.
    @raise Invalid_argument on a region with no member partitions (a
    scheme that {!Prcore.Scheme.make} would reject). *)

val simulate :
  ?icap:Fpga.Icap.t ->
  ?trace:(event -> unit) ->
  ?telemetry:Prtelemetry.t ->
  Prcore.Scheme.t ->
  initial:int ->
  sequence:int list ->
  stats
(** Start in configuration [initial] (its full bitstream is not counted;
    regions the initial configuration does not use are deemed to hold
    their first-listed partition, since the full bitstream configures the
    whole fabric) and visit [sequence] in order. [trace] observes each
    step. @raise Invalid_argument on an out-of-range [initial] or
    [sequence] configuration index (both validated up front, with the
    offending index named) or a region with no member partitions.

    [telemetry] (default {!Prtelemetry.null}, free): a
    ["runtime.simulate"] span; ["runtime.steps"],
    ["runtime.transitions"] and ["runtime.frames"] counters; a
    ["runtime.total_seconds"] gauge; and a ["runtime.transition"] trace
    event per configuration change (when tracing). *)

val random_walk :
  rand:(int -> int) -> configs:int -> steps:int -> initial:int -> int list
(** A uniform random adaptation sequence avoiding self-transitions;
    [rand n] must return a uniform value in [0, n). Suitable as
    [simulate]'s [sequence]. @raise Invalid_argument when [configs < 2],
    [steps < 0] or [initial] is out of range. *)

val pp_stats : Format.formatter -> stats -> unit
