(** Adaptation traces: named, persistable configuration sequences.

    The paper evaluates with the all-pairs proxy because adaptive systems'
    transition orders are environment-driven; when a deployment {e can}
    log its behaviour, that log is the right workload to replay. A trace
    is the initial configuration plus the visited sequence, stored in a
    line-oriented text format:

    {v
    # prpart-trace v1
    design video-receiver
    initial c1
    c2
    c3
    ...
    v}

    Configurations are referenced by name; blank lines and [#] comments
    are ignored. *)

type t = private {
  design_name : string;
  initial : int;
  sequence : int list;  (** Configuration indices, in visit order. *)
}

val record :
  Prdesign.Design.t -> initial:int -> sequence:int list -> t
(** @raise Invalid_argument on out-of-range configuration indices. *)

val of_markov :
  Prdesign.Design.t ->
  chain:Markov.t ->
  rand:(unit -> float) ->
  steps:int ->
  initial:int ->
  t
(** Sample a trace from a Markov chain (self-transitions are kept: they
    model steps where the environment does not change).
    @raise Invalid_argument when the chain does not match the design's
    configuration count. *)

val simulate :
  ?icap:Fpga.Icap.t ->
  ?telemetry:Prtelemetry.t ->
  Prcore.Scheme.t ->
  t ->
  Manager.stats
(** Replay the trace on a scheme; [telemetry] is passed through to
    {!Manager.simulate}.
    @raise Invalid_argument when the trace's design name differs from the
    scheme's design. *)

val simulate_resilient :
  ?icap:Fpga.Icap.t ->
  ?memory:Fetch.memory ->
  ?cache:Fetch.cache ->
  ?telemetry:Prtelemetry.t ->
  ?fault:Resilient.config ->
  Prcore.Scheme.t ->
  t ->
  (Resilient.outcome, Resilient.failure) result
(** Replay the trace under fault injection ({!Resilient.simulate}).
    @raise Invalid_argument when the trace's design name differs from
    the scheme's design. *)

val to_string : Prdesign.Design.t -> t -> string
val of_string : Prdesign.Design.t -> string -> (t, string) result
val save_file : Prdesign.Design.t -> string -> t -> unit
val load_file : Prdesign.Design.t -> string -> (t, string) result
(** [Error] covers both unreadable files ([Sys_error] is caught) and
    unparseable content. *)

val length : t -> int
