(** Transition-cost tables for a partitioning scheme: the pairwise frame
    matrix (the paper's [t_{con i,j}]) and its ICAP wall-clock
    equivalent. *)

type t

val make : ?icap:Fpga.Icap.t -> Prcore.Scheme.t -> t
val scheme : t -> Prcore.Scheme.t

val frames : t -> int -> int -> int
(** Frames written when switching between two configurations (symmetric,
    zero on the diagonal).
    @raise Invalid_argument on out-of-range indices. *)

val seconds : t -> int -> int -> float
(** ICAP wall-clock time of the same transition. *)

val total_frames : t -> int
(** Sum over unordered pairs — the paper's total reconfiguration time. *)

val worst : t -> (int * int * int) option
(** Heaviest transition as [(i, j, frames)]; [None] for designs with a
    single configuration. *)

val pp : Format.formatter -> t -> unit
(** The full matrix, with configuration names. *)
