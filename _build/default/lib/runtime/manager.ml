module Scheme = Prcore.Scheme
module Design = Prdesign.Design

type event = {
  step : int;
  from_config : int;
  to_config : int;
  regions_reconfigured : int list;
  frames : int;
  seconds : float;
}

type stats = {
  steps : int;
  transitions : int;
  total_frames : int;
  total_seconds : float;
  max_frames : int;
  mean_frames : float;
  region_loads : int array;
}

(* What the initial full bitstream leaves in region [r]: the active
   partition when configuration [initial] uses the region, else the
   region's first-listed partition (the fabric must hold something).
   Shared with Resilient.simulate so both runtimes agree bit-for-bit. *)
let initial_resident (scheme : Scheme.t) ~initial r =
  match Scheme.active_partition scheme ~config:initial ~region:r with
  | Some p -> p
  | None -> (
    match Scheme.region_members scheme r with
    | p :: _ -> p
    | [] ->
      invalid_arg
        (Printf.sprintf
           "Manager.simulate: region %d has no member partitions (invalid \
            scheme)"
           r))

let simulate ?(icap = Fpga.Icap.default) ?(trace = fun _ -> ())
    ?(telemetry = Prtelemetry.null) (scheme : Scheme.t) ~initial ~sequence =
  let configs = Design.configuration_count scheme.Scheme.design in
  Prtelemetry.with_span telemetry "runtime.simulate"
    ~attrs:
      [ ( "design",
          Prtelemetry.Json.String scheme.Scheme.design.Design.name );
        ("steps", Prtelemetry.Json.Int (List.length sequence)) ]
  @@ fun () ->
  let step_counter = Prtelemetry.counter telemetry "runtime.steps" in
  let transition_counter =
    Prtelemetry.counter telemetry "runtime.transitions"
  in
  let frame_counter = Prtelemetry.counter telemetry "runtime.frames" in
  let check what c =
    if c < 0 || c >= configs then
      invalid_arg
        (Printf.sprintf
           "Manager.simulate: %s configuration %d out of range [0, %d)" what c
           configs)
  in
  check "initial" initial;
  List.iter (check "sequence") sequence;
  let regions = scheme.Scheme.region_count in
  (* The initial full bitstream configures every region: regions the
     initial configuration uses hold their active partition, idle regions
     hold their first-listed partition (some content must be there). *)
  let resident = Array.init regions (initial_resident scheme ~initial) in
  let region_loads = Array.make regions 0 in
  let current = ref initial in
  let step = ref 0 in
  let transitions = ref 0 in
  let total_frames = ref 0 in
  let total_seconds = ref 0. in
  let max_frames = ref 0 in
  List.iter
    (fun target ->
      incr step;
      Prtelemetry.Counter.incr step_counter;
      let reconfigured = ref [] in
      let frames = ref 0 in
      if target <> !current then begin
        incr transitions;
        Prtelemetry.Counter.incr transition_counter;
        for r = regions - 1 downto 0 do
          match Scheme.active_partition scheme ~config:target ~region:r with
          | None -> ()  (* content is a don't-care: keep the old bitstream *)
          | Some needed ->
            if resident.(r) <> needed then begin
              resident.(r) <- needed;
              region_loads.(r) <- region_loads.(r) + 1;
              reconfigured := r :: !reconfigured;
              frames := !frames + Scheme.region_frames scheme r
            end
        done
      end;
      let seconds = Fpga.Icap.seconds_of_frames icap !frames in
      total_frames := !total_frames + !frames;
      total_seconds := !total_seconds +. seconds;
      if !frames > !max_frames then max_frames := !frames;
      Prtelemetry.Counter.incr frame_counter ~by:!frames;
      if Prtelemetry.tracing telemetry && target <> !current then
        Prtelemetry.point telemetry "runtime.transition"
          ~attrs:
            [ ("step", Prtelemetry.Json.Int !step);
              ("from", Prtelemetry.Json.Int !current);
              ("to", Prtelemetry.Json.Int target);
              ( "regions",
                Prtelemetry.Json.Int (List.length !reconfigured) );
              ("frames", Prtelemetry.Json.Int !frames) ];
      trace
        { step = !step;
          from_config = !current;
          to_config = target;
          regions_reconfigured = !reconfigured;
          frames = !frames;
          seconds };
      current := target)
    sequence;
  Prtelemetry.set_gauge telemetry "runtime.total_seconds" !total_seconds;
  { steps = !step;
    transitions = !transitions;
    total_frames = !total_frames;
    total_seconds = !total_seconds;
    max_frames = !max_frames;
    mean_frames =
      (if !transitions = 0 then 0.
       else float_of_int !total_frames /. float_of_int !transitions);
    region_loads }

let random_walk ~rand ~configs ~steps ~initial =
  if configs < 2 then invalid_arg "Manager.random_walk: need >= 2 configurations";
  if steps < 0 then invalid_arg "Manager.random_walk: negative step count";
  if initial < 0 || initial >= configs then
    invalid_arg
      (Printf.sprintf
         "Manager.random_walk: initial configuration %d out of range [0, %d)"
         initial configs);
  let rec walk current n acc =
    if n = 0 then List.rev acc
    else begin
      (* Uniform over the other configurations. *)
      let pick = rand (configs - 1) in
      let next = if pick >= current then pick + 1 else pick in
      walk next (n - 1) (next :: acc)
    end
  in
  walk initial steps []

let pp_stats ppf s =
  Format.fprintf ppf
    "%d steps (%d transitions): %d frames, %.3f ms total, max %d frames, \
     mean %.1f frames/transition"
    s.steps s.transitions s.total_frames (s.total_seconds *. 1e3) s.max_frames
    s.mean_frames
