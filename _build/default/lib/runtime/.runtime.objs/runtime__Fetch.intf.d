lib/runtime/fetch.mli: Fpga Prcore
