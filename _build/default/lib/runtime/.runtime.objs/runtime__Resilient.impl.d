lib/runtime/resilient.ml: Array Fetch Fpga List Manager Prcore Prdesign Prfault Printf Prtelemetry
