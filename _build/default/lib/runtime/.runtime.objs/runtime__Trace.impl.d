lib/runtime/trace.ml: Array Buffer Fun List Manager Markov Prcore Prdesign Printf Resilient String
