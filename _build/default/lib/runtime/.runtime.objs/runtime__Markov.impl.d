lib/runtime/markov.ml: Array Float Format Printf
