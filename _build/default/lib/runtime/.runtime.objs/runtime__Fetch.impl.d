lib/runtime/fetch.ml: Fpga List Manager Prcore Printf
