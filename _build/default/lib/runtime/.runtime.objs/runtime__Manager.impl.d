lib/runtime/manager.ml: Array Format Fpga List Prcore Prdesign Printf Prtelemetry
