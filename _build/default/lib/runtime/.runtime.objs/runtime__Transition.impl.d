lib/runtime/transition.ml: Array Format Fpga Prcore Prdesign
