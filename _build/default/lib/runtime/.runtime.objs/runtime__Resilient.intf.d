lib/runtime/resilient.mli: Fetch Fpga Manager Prcore Prfault Prtelemetry
