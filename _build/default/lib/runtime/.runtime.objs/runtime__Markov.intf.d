lib/runtime/markov.mli: Format
