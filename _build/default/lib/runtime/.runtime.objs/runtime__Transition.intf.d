lib/runtime/transition.mli: Format Fpga Prcore
