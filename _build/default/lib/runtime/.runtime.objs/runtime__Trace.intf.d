lib/runtime/trace.mli: Fetch Fpga Manager Markov Prcore Prdesign Prtelemetry Resilient
