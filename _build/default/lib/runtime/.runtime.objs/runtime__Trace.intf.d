lib/runtime/trace.mli: Fpga Manager Markov Prcore Prdesign Prtelemetry
