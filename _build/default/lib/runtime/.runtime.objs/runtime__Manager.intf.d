lib/runtime/manager.mli: Format Fpga Prcore Prtelemetry
