(** Markov-chain adaptation workloads.

    The paper optimises the unweighted sum of all transitions because "the
    order in which the system will switch … depends on environmental
    conditions"; it notes that known transition probabilities "could be
    factored into the measure" as future work. This module provides that
    statistical model: a row-stochastic transition matrix over
    configurations, its stationary distribution, and the long-run expected
    reconfiguration rate of a scheme under the chain. *)

type t = private { p : float array array }

val make : float array array -> (t, string) result
(** Validates a square, row-stochastic matrix (rows sum to 1 within 1e-9,
    entries non-negative). Self-transitions are allowed (they cost
    nothing). *)

val make_exn : float array array -> t

val uniform : configs:int -> t
(** Uniform over the {e other} configurations — the implicit workload of
    the paper's total-time metric. @raise Invalid_argument when
    [configs < 2]. *)

val random : rand:(unit -> float) -> ?concentration:float -> configs:int -> unit -> t
(** A random chain: each row draws positive weights ([u^concentration]
    for uniform [u], default concentration 3 — larger = more skewed) over
    the other configurations and normalises. [rand ()] must return a
    uniform float in [0, 1). @raise Invalid_argument when [configs < 2]. *)

val configs : t -> int

val probability : t -> from:int -> into:int -> float

val stationary : ?iterations:int -> ?epsilon:float -> t -> float array
(** Stationary distribution by power iteration from the uniform vector
    (defaults: 10_000 iterations, epsilon 1e-12). For periodic or
    reducible chains this returns the Cesàro-style iterate it converged
    to, which is still a valid weighting. *)

val edge_rates : t -> float array array
(** [rates.(i).(j) = stationary(i) * p(i)(j)] for [i <> j], zero on the
    diagonal: the long-run rate of the [i -> j] transition per step. Rates
    over all [i <> j] sum to the probability that a step changes
    configuration. *)

val expected_frames_per_step : t -> frames:(int -> int -> int) -> float
(** Long-run expected frames written per step, given the per-transition
    frame cost (e.g. {!Transition.frames} applied to a scheme). *)

val pp : Format.formatter -> t -> unit
