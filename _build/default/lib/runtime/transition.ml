module Scheme = Prcore.Scheme
module Cost = Prcore.Cost
module Design = Prdesign.Design

type t = { scheme : Scheme.t; icap : Fpga.Icap.t; matrix : int array array }

let make ?(icap = Fpga.Icap.default) scheme =
  { scheme; icap; matrix = Cost.transition_matrix scheme }

let scheme t = t.scheme

let check t i =
  if i < 0 || i >= Array.length t.matrix then
    invalid_arg "Transition: configuration index out of range"

let frames t i j =
  check t i;
  check t j;
  t.matrix.(i).(j)

let seconds t i j = Fpga.Icap.seconds_of_frames t.icap (frames t i j)

let total_frames t =
  let n = Array.length t.matrix in
  let acc = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      acc := !acc + t.matrix.(i).(j)
    done
  done;
  !acc

let worst t =
  let n = Array.length t.matrix in
  let best = ref None in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      match !best with
      | Some (_, _, f) when f >= t.matrix.(i).(j) -> ()
      | Some _ | None -> best := Some (i, j, t.matrix.(i).(j))
    done
  done;
  !best

let pp ppf t =
  let design = t.scheme.Scheme.design in
  let name i =
    design.Design.configurations.(i).Prdesign.Configuration.name
  in
  let n = Array.length t.matrix in
  Format.fprintf ppf "%10s" "";
  for j = 0 to n - 1 do
    Format.fprintf ppf " %8s" (name j)
  done;
  Format.pp_print_newline ppf ();
  for i = 0 to n - 1 do
    Format.fprintf ppf "%10s" (name i);
    for j = 0 to n - 1 do
      Format.fprintf ppf " %8d" t.matrix.(i).(j)
    done;
    Format.pp_print_newline ppf ()
  done
