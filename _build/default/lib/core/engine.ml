module Design = Prdesign.Design
module Resource = Fpga.Resource
module Agglomerative = Cluster.Agglomerative

type target = Budget of Resource.t | Fixed of Fpga.Device.t | Auto

type objective = Total_frames | Weighted of float array array

type options = {
  freq_rule : Agglomerative.freq_rule;
  clique_limit : int;
  max_candidate_sets : int;
  allocator : Allocator.options;
  objective : objective;
  worst_limit : int option;
}

let default_options =
  { freq_rule = Agglomerative.Support;
    clique_limit = 100_000;
    max_candidate_sets = 32;
    allocator = Allocator.default_options;
    objective = Total_frames;
    worst_limit = None }

let meets_worst_limit ~options (e : Cost.evaluation) =
  match options.worst_limit with
  | None -> true
  | Some limit -> e.Cost.worst_frames <= limit

type outcome = {
  design : Design.t;
  scheme : Scheme.t;
  evaluation : Cost.evaluation;
  device : Fpga.Device.t option;
  budget : Resource.t;
  base_partitions : int;
  candidate_sets : int;
  escalations : int;
}

let is_single_region_like (s : Scheme.t) =
  s.Scheme.region_count = 1 && Scheme.static_members s = []

(* Scheme ranking under the selected objective: objective value first,
   then the paper's worst case, then area. *)
let scheme_key ~objective scheme (e : Cost.evaluation) =
  let value =
    match objective with
    | Total_frames -> float_of_int e.Cost.total_frames
    | Weighted weights -> Cost.weighted_total scheme ~weights
  in
  (value, e.Cost.worst_frames, Fpga.Tile.frames_of_resources e.Cost.used)

let better ~objective a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some (sa, ea), Some (sb, eb) ->
    if scheme_key ~objective sa ea <= scheme_key ~objective sb eb then
      Some (sa, ea)
    else Some (sb, eb)

let pair_weight_of_objective ~configs = function
  | Total_frames -> Ok (fun _ _ -> 1.)
  | Weighted weights ->
    if
      Array.length weights <> configs
      || Array.exists (fun row -> Array.length row <> configs) weights
    then Error "objective weight matrix does not match the configurations"
    else Ok (fun i j -> weights.(i).(j) +. weights.(j).(i))

(* Solve for a fixed budget. The single-region scheme is the universal
   fallback: the feasibility precondition guarantees it fits. *)
let solve_budget ~options ~budget design =
  let single = Scheme.single_region design in
  let single_eval = Cost.evaluate single in
  if not (Cost.fits single_eval ~budget) then
    Error
      (Format.asprintf
         "design %s does not fit the budget %a even as a single region \
          (needs %a)"
         design.Design.name Resource.pp budget Resource.pp
         single_eval.Cost.used)
  else begin
    match
      pair_weight_of_objective
        ~configs:(Design.configuration_count design)
        options.objective
    with
    | Error message -> Error message
    | Ok pair_weight ->
      let objective = options.objective in
      let partitions =
        Agglomerative.run ~freq_rule:options.freq_rule
          ~clique_limit:options.clique_limit design
      in
      let sets =
        Covering.candidate_sets ~max_sets:options.max_candidate_sets design
          partitions
      in
      (* Second textbook fallback: when everything fits statically, zero
         reconfiguration time is trivially optimal (paper §IV-A). *)
      let static_candidate =
        let scheme = Scheme.fully_static design in
        let evaluation = Cost.evaluate scheme in
        if Cost.fits evaluation ~budget then Some (scheme, evaluation)
        else None
      in
      let admissible candidate =
        match candidate with
        | Some (_, e) when not (meets_worst_limit ~options e) -> None
        | Some _ | None -> candidate
      in
      let best =
        List.fold_left
          (fun best set ->
            match
              Allocator.allocate ~options:options.allocator ~pair_weight
                ~budget design set
            with
            | None -> best
            | Some scheme ->
              better ~objective best
                (admissible (Some (scheme, Cost.evaluate scheme))))
          (better ~objective
             (admissible (Some (single, single_eval)))
             (admissible static_candidate))
          sets
      in
      (match best with
       | Some (scheme, evaluation) ->
         Ok (scheme, evaluation, List.length partitions, List.length sets)
       | None ->
         Error
           (Format.asprintf
              "no explored scheme for %s meets the worst-case limit of %d \
               frames"
              design.Design.name
              (Option.value ~default:0 options.worst_limit)))
  end

let outcome ~design ~device ~budget ~escalations
    (scheme, evaluation, base_partitions, candidate_sets) =
  { design;
    scheme;
    evaluation;
    device;
    budget;
    base_partitions;
    candidate_sets;
    escalations }

let solve ?(options = default_options) ~target design =
  match target with
  | Budget budget ->
    Result.map
      (outcome ~design ~device:None ~budget ~escalations:0)
      (solve_budget ~options ~budget design)
  | Fixed device ->
    let budget = Fpga.Device.resources device in
    Result.map
      (outcome ~design ~device:(Some device) ~budget ~escalations:0)
      (solve_budget ~options ~budget design)
  | Auto ->
    (* Smallest device fitting the single-region lower bound, then escalate
       while the partitioner cannot beat a single region. *)
    let lower_bound =
      Resource.add
        (Fpga.Tile.quantize (Design.min_region_requirement design))
        design.Design.static_overhead
    in
    (match Fpga.Device.smallest_fitting lower_bound with
     | None ->
       Error
         (Format.asprintf
            "design %s does not fit any catalogued device (needs %a)"
            design.Design.name Resource.pp lower_bound)
     | Some first ->
       let rec attempt device escalations best =
         let budget = Fpga.Device.resources device in
         let best =
           match solve_budget ~options ~budget design with
           | Error _ -> best
           | Ok result ->
             let candidate =
               outcome ~design ~device:(Some device) ~budget ~escalations
                 result
             in
             (match best with
              | Some b
                when (b.evaluation.Cost.total_frames,
                      b.evaluation.Cost.worst_frames)
                     <= (candidate.evaluation.Cost.total_frames,
                         candidate.evaluation.Cost.worst_frames) ->
                Some b
              | Some _ | None -> Some candidate)
         in
         let should_escalate =
           match best with
           | None -> true
           | Some b -> is_single_region_like b.scheme
         in
         if should_escalate then
           match Fpga.Device.next_larger device with
           | Some next -> attempt next (escalations + 1) best
           | None -> best
         else best
       in
       (match attempt first 0 None with
        | Some outcome -> Ok outcome
        | None ->
          Error
            (Format.asprintf "design %s could not be partitioned on any device"
               design.Design.name)))
