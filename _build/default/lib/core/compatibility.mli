(** Activity analysis for an ordered base-partition list.

    For every configuration, the analysis resolves which partitions are
    {e active} — loaded into their regions because the configuration needs
    modes from them. Resolution is greedy set cover per configuration:
    repeatedly take the partition covering the most still-uncovered modes
    of the configuration (ties broken by priority order). For disjoint
    partitions this reduces to "the partition containing the mode", the
    paper's covering semantics; for overlapping clusters (e.g. the
    single-region scheme, whose clusters are whole configurations) it
    selects the best-matching cluster.

    Two base partitions are {e compatible} — may share a reconfigurable
    region — iff no configuration activates both (paper §IV-C; for
    disjoint partitions this coincides with the paper's mode-co-occurrence
    rule). *)

type t

val analyse : Prdesign.Design.t -> Cluster.Base_partition.t array -> t
(** Build the activity analysis for partitions taken in priority order.
    Partition mode ids must be valid for the design. *)

val design : t -> Prdesign.Design.t
val partitions : t -> Cluster.Base_partition.t array

val covers_design : t -> bool
(** True when every mode of every configuration belongs to some listed
    partition (equivalently: greedy resolution covers every
    configuration). *)

val active : t -> bp:int -> config:int -> bool

val active_configs : t -> int -> int list
(** Configurations in which partition [bp] is active, ascending. *)

val compatible : t -> int -> int -> bool
(** [compatible t p q] — no configuration activates both [p] and [q].
    [compatible t p p = false] whenever [p] is active anywhere. *)

val compatible_all : t -> int list -> bool
(** Pairwise compatibility of a whole group. *)
