module Design = Prdesign.Design
module Base_partition = Cluster.Base_partition

type t = {
  design : Design.t;
  partitions : Base_partition.t array;
  activity : bool array array;  (* bp index x config index *)
  covers : bool;
}

(* Greedy best-coverage resolution of one configuration: pick the
   partition covering the most uncovered modes (earliest on ties), until
   no partition covers anything new. *)
let resolve partitions config_modes mark =
  let uncovered = ref config_modes in
  let continue_ = ref true in
  while !continue_ && !uncovered <> [] do
    let best = ref None in
    Array.iteri
      (fun p (bp : Base_partition.t) ->
        let covered =
          List.length (List.filter (fun m -> Base_partition.mem m bp) !uncovered)
        in
        match !best with
        | Some (_, best_covered) when covered <= best_covered -> ()
        | Some _ | None -> if covered > 0 then best := Some (p, covered))
      partitions;
    match !best with
    | None -> continue_ := false
    | Some (p, _) ->
      mark p;
      uncovered :=
        List.filter
          (fun m -> not (Base_partition.mem m partitions.(p)))
          !uncovered
  done;
  !uncovered = []

let analyse design partitions =
  let modes = Design.mode_count design in
  Array.iter
    (fun (bp : Base_partition.t) ->
      List.iter
        (fun mode ->
          if mode < 0 || mode >= modes then
            invalid_arg "Compatibility.analyse: mode id out of range")
        bp.modes)
    partitions;
  let configs = Design.configuration_count design in
  let activity = Array.make_matrix (Array.length partitions) configs false in
  let covers = ref true in
  for c = 0 to configs - 1 do
    let full =
      resolve partitions
        (Design.config_mode_ids design c)
        (fun p -> activity.(p).(c) <- true)
    in
    if not full then covers := false
  done;
  { design; partitions; activity; covers = !covers }

let design t = t.design
let partitions t = t.partitions
let covers_design t = t.covers

let check_bp t p =
  if p < 0 || p >= Array.length t.partitions then
    invalid_arg "Compatibility: partition index out of range"

let active t ~bp ~config =
  check_bp t bp;
  if config < 0 || config >= Design.configuration_count t.design then
    invalid_arg "Compatibility.active: configuration index out of range";
  t.activity.(bp).(config)

let active_configs t p =
  check_bp t p;
  let acc = ref [] in
  for c = Array.length t.activity.(p) - 1 downto 0 do
    if t.activity.(p).(c) then acc := c :: !acc
  done;
  !acc

let compatible t p q =
  check_bp t p;
  check_bp t q;
  if p = q then Array.for_all not t.activity.(p)
  else begin
    let configs = Array.length t.activity.(p) in
    let rec scan c =
      if c >= configs then true
      else if t.activity.(p).(c) && t.activity.(q).(c) then false
      else scan (c + 1)
    in
    scan 0
  end

let compatible_all t group =
  let rec pairs = function
    | [] -> true
    | p :: rest -> List.for_all (fun q -> compatible t p q) rest && pairs rest
  in
  pairs group
