module Design = Prdesign.Design
module Base_partition = Cluster.Base_partition
module Resource = Fpga.Resource
module Tile = Fpga.Tile

type options = { max_restarts : int; promote_static : bool }

let default_options = { max_restarts = 8; promote_static = true }

(* Scalar area in frame-equivalents, used for deficits and tie-breaks:
   frames contributed per primitive of each kind. *)
let frames_per_clb = float_of_int (Tile.frames_per_tile Clb) /. 20.
let frames_per_bram = float_of_int (Tile.frames_per_tile Bram) /. 4.
let frames_per_dsp = float_of_int (Tile.frames_per_tile Dsp) /. 8.

let scalar (r : Resource.t) =
  (float_of_int r.clb *. frames_per_clb)
  +. (float_of_int r.bram *. frames_per_bram)
  +. (float_of_int r.dsp *. frames_per_dsp)

let deficit ~budget (used : Resource.t) =
  let over a b = max 0 (a - b) in
  scalar
    { Resource.clb = over used.clb budget.Resource.clb;
      bram = over used.bram budget.Resource.bram;
      dsp = over used.dsp budget.Resource.dsp }

(* A live region: its member partitions (priority order), the resident
   partition per configuration (-1 = don't care), and cached area/cost. *)
type region = {
  mutable members : int list;
  mutable column : int array;
  mutable resources : Resource.t;
  mutable quantized : Resource.t;
  mutable frames : int;
  mutable conflicts : float;  (* weighted count of reconfiguring pairs *)
  mutable alive : bool;
}

type state = {
  design : Design.t;
  partitions : Base_partition.t array;
  regions : region array;  (* indexed by founding partition *)
  mutable statics : int list;  (* partitions promoted to static *)
  pair_weight : int -> int -> float;
}

(* Weighted sum over unordered config pairs with two distinct
   non-don't-care residents. With the default unit weight this is the
   paper's conflict count (eq. 8's decision variable summed over pairs). *)
let conflicts_of_column ~pair_weight column =
  let n = Array.length column in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    let a = column.(i) in
    if a >= 0 then
      for j = i + 1 to n - 1 do
        let b = column.(j) in
        if b >= 0 && a <> b then acc := !acc +. pair_weight i j
      done
  done;
  !acc

let refresh_cost ~pair_weight region =
  region.quantized <- Tile.quantize region.resources;
  region.frames <- Tile.frames_of_resources region.resources;
  region.conflicts <- conflicts_of_column ~pair_weight region.column

let initial_state ~pair_weight design partitions analysis =
  let configs = Design.configuration_count design in
  let regions =
    Array.mapi
      (fun p (bp : Base_partition.t) ->
        let column =
          Array.init configs (fun c ->
              if Compatibility.active analysis ~bp:p ~config:c then p else -1)
        in
        let region =
          { members = [ p ];
            column;
            resources = bp.resources;
            quantized = Resource.zero;
            frames = 0;
            conflicts = 0.;
            alive = true }
        in
        refresh_cost ~pair_weight region;
        region)
      partitions
  in
  { design; partitions; regions; statics = []; pair_weight }

let copy_state state =
  { state with
    regions =
      Array.map
        (fun r -> { r with column = Array.copy r.column })
        state.regions;
    statics = state.statics }

let static_resources state =
  List.fold_left
    (fun acc p ->
      Resource.add acc state.partitions.(p).Base_partition.resources)
    state.design.Design.static_overhead state.statics

let used_resources state =
  Array.fold_left
    (fun acc r -> if r.alive then Resource.add acc r.quantized else acc)
    (static_resources state) state.regions


(* Two regions may merge iff no configuration needs both. *)
let mergeable a b =
  let ok = ref true in
  Array.iteri
    (fun c va -> if va >= 0 && b.column.(c) >= 0 then ok := false)
    a.column;
  !ok

let merged_column a b =
  Array.init (Array.length a.column) (fun c ->
      if a.column.(c) >= 0 then a.column.(c) else b.column.(c))

type move = Merge of int * int | Promote of int

(* Evaluate a move against the current state: the reconfiguration-time
   delta and the resulting resource usage. *)
let evaluate_move state used move =
  match move with
  | Merge (i, j) ->
    let a = state.regions.(i) and b = state.regions.(j) in
    let column = merged_column a b in
    let resources = Resource.max a.resources b.resources in
    let quantized = Tile.quantize resources in
    let frames = Tile.frames_of_resources resources in
    let conflicts = conflicts_of_column ~pair_weight:state.pair_weight column in
    let dtime =
      (float_of_int frames *. conflicts)
      -. (float_of_int a.frames *. a.conflicts)
      -. (float_of_int b.frames *. b.conflicts)
    in
    let new_used =
      Resource.add
        (Resource.sub (Resource.sub used a.quantized) b.quantized)
        quantized
    in
    (dtime, new_used)
  | Promote i ->
    let r = state.regions.(i) in
    let raw =
      List.fold_left
        (fun acc p ->
          Resource.add acc state.partitions.(p).Base_partition.resources)
        Resource.zero r.members
    in
    ( -.(float_of_int r.frames *. r.conflicts),
      Resource.add (Resource.sub used r.quantized) raw )

let apply_move state move =
  match move with
  | Merge (i, j) ->
    let a = state.regions.(i) and b = state.regions.(j) in
    a.members <- a.members @ b.members;
    a.column <- merged_column a b;
    a.resources <- Resource.max a.resources b.resources;
    refresh_cost ~pair_weight:state.pair_weight a;
    b.alive <- false
  | Promote i ->
    let r = state.regions.(i) in
    state.statics <- state.statics @ r.members;
    r.alive <- false

let candidate_moves ~promote_static state =
  let n = Array.length state.regions in
  let moves = ref [] in
  for i = 0 to n - 1 do
    if state.regions.(i).alive then begin
      if promote_static then moves := Promote i :: !moves;
      for j = i + 1 to n - 1 do
        if
          state.regions.(j).alive
          && mergeable state.regions.(i) state.regions.(j)
        then moves := Merge (i, j) :: !moves
      done
    end
  done;
  !moves

(* One greedy descent. Over budget: minimise the deficit, then added time,
   then area. Within budget: apply time-reducing promotions only.
   [evaluate_move]/[apply_move] default to the plain implementations; the
   allocator passes telemetry-counting wrappers. *)
let greedy ~options ~budget ?(evaluate_move = evaluate_move)
    ?(apply_move = apply_move) state =
  let continue_ = ref true in
  while !continue_ do
    let used = used_resources state in
    let current_deficit = deficit ~budget used in
    let moves = candidate_moves ~promote_static:options.promote_static state in
    let scored =
      List.map
        (fun m ->
          let dtime, new_used = evaluate_move state used m in
          (m, dtime, new_used, deficit ~budget new_used))
        moves
    in
    let best =
      if current_deficit > 0. then
        (* Progress = not increasing the deficit; merges always shrink
           area so ties are allowed, promotions must strictly help. *)
        let eligible =
          List.filter
            (fun (m, _, _, d) ->
              match m with
              | Merge _ -> d <= current_deficit
              | Promote _ -> d < current_deficit)
            scored
        in
        let better (_, t1, u1, d1) (_, t2, u2, d2) =
          match compare d1 d2 with
          | 0 -> (
            match compare t1 t2 with
            | 0 -> compare (scalar u1) (scalar u2)
            | c -> c)
          | c -> c
        in
        (match List.sort better eligible with m :: _ -> Some m | [] -> None)
      else
        let eligible =
          List.filter
            (fun (m, dtime, _, d) ->
              d = 0.
              && dtime < 0.
              && match m with Promote _ -> true | Merge _ -> false)
            scored
        in
        let better (_, t1, u1, _) (_, t2, u2, _) =
          match compare t1 t2 with
          | 0 -> compare (scalar u1) (scalar u2)
          | c -> c
        in
        (match List.sort better eligible with m :: _ -> Some m | [] -> None)
    in
    match best with
    | Some (m, _, _, _) -> apply_move state m
    | None -> continue_ := false
  done;
  if deficit ~budget (used_resources state) > 0. then None else Some state

let scheme_of_state state =
  let next = ref 0 in
  let region_ids = Array.make (Array.length state.regions) (-1) in
  Array.iteri
    (fun i r ->
      if r.alive then begin
        region_ids.(i) <- !next;
        incr next
      end)
    state.regions;
  let placement = Array.make (Array.length state.partitions) Scheme.Static in
  Array.iteri
    (fun i r ->
      if r.alive then
        List.iter
          (fun p -> placement.(p) <- Scheme.Region region_ids.(i))
          r.members)
    state.regions;
  List.iter (fun p -> placement.(p) <- Scheme.Static) state.statics;
  Scheme.make_exn state.design
    (List.mapi
       (fun p bp -> (bp, placement.(p)))
       (Array.to_list state.partitions))

(* Rank restart results by the weighted objective (the greedy state's
   summed contributions), then the paper's worst case, then area. *)
let better_scheme a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some ((_, va, ea) as a'), Some ((_, vb, eb) as b') ->
    let key value (e : Cost.evaluation) =
      (value, e.worst_frames, scalar e.used)
    in
    if key va ea <= key vb eb then Some a' else Some b'

let allocate ?(options = default_options) ?(pair_weight = fun _ _ -> 1.)
    ?(telemetry = Prtelemetry.null) ~budget design partitions =
  match partitions with
  | [] -> None
  | _ ->
    Prtelemetry.with_span telemetry "alloc.allocate" (fun () ->
        let moves_evaluated =
          Prtelemetry.counter telemetry "alloc.moves_evaluated"
        in
        let merges_accepted =
          Prtelemetry.counter telemetry "alloc.merges_accepted"
        in
        let promotions = Prtelemetry.counter telemetry "alloc.promotions" in
        let restarts_run = Prtelemetry.counter telemetry "alloc.restarts" in
        let cost_evaluations =
          Prtelemetry.counter telemetry "core.cost_evaluations"
        in
        let evaluate_move state used move =
          Prtelemetry.Counter.incr moves_evaluated;
          evaluate_move state used move
        in
        let apply_move state move =
          (match move with
           | Merge _ -> Prtelemetry.Counter.incr merges_accepted
           | Promote _ -> Prtelemetry.Counter.incr promotions);
          apply_move state move
        in
        let parts = Array.of_list partitions in
        let analysis = Compatibility.analyse design parts in
        if not (Compatibility.covers_design analysis) then None
        else begin
          let base = initial_state ~pair_weight design parts analysis in
          let run first_move =
            Prtelemetry.Counter.incr restarts_run;
            let state = copy_state base in
            Option.iter (apply_move state) first_move;
            match greedy ~options ~budget ~evaluate_move ~apply_move state with
            | None -> None
            | Some state ->
              let weighted_value =
                Array.fold_left
                  (fun acc r ->
                    if r.alive then
                      acc +. (float_of_int r.frames *. r.conflicts)
                    else acc)
                  0. state.regions
              in
              let scheme = scheme_of_state state in
              Prtelemetry.Counter.incr cost_evaluations;
              Some (scheme, weighted_value, Cost.evaluate scheme)
          in
          (* Alternative first moves: the initial state's candidate moves
             ranked by (time delta, area), truncated to the restart budget. *)
          let restarts =
            let used = used_resources base in
            let ranked =
              List.sort
                (fun (_, t1, u1) (_, t2, u2) ->
                  match compare t1 t2 with
                  | 0 -> compare (scalar u1) (scalar u2)
                  | c -> c)
                (List.map
                   (fun m ->
                     let dtime, new_used = evaluate_move base used m in
                     (m, dtime, new_used))
                   (candidate_moves ~promote_static:options.promote_static base))
            in
            let rec take n = function
              | [] -> []
              | _ when n = 0 -> []
              | (m, _, _) :: rest -> Some m :: take (n - 1) rest
            in
            None :: take options.max_restarts ranked
          in
          let best =
            List.fold_left
              (fun best first_move ->
                let best' = better_scheme best (run first_move) in
                let improved =
                  match (best', best) with
                  | Some (s', _, _), Some (s, _, _) -> s' != s
                  | Some _, None -> true
                  | None, _ -> false
                in
                (match best' with
                 | Some (scheme, value, e) when improved ->
                   if Prtelemetry.tracing telemetry then
                     Prtelemetry.point telemetry "alloc.best"
                       ~attrs:
                         [ ("value", Prtelemetry.Json.Float value);
                           ( "total_frames",
                             Prtelemetry.Json.Int e.Cost.total_frames );
                           ( "worst_frames",
                             Prtelemetry.Json.Int e.Cost.worst_frames );
                           ( "regions",
                             Prtelemetry.Json.Int scheme.Scheme.region_count )
                         ]
                 | _ -> ());
                best')
              None restarts
          in
          Option.map (fun (scheme, _, _) -> scheme) best
        end)
