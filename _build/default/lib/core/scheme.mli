(** A partitioning scheme: an assignment of a priority-ordered list of base
    partitions to reconfigurable regions and (optionally) to the static
    area. This is the object the allocator searches over and the cost
    model evaluates; the three textbook schemes (fully static, single
    region, one module per region) are expressible in the same form, so
    every comparison in the paper uses one cost model. *)

type placement = Static | Region of int

type t = private {
  design : Prdesign.Design.t;
  partitions : Cluster.Base_partition.t array;  (** Priority order. *)
  placement : placement array;
  region_count : int;
  analysis : Compatibility.t;
}

val make :
  Prdesign.Design.t ->
  (Cluster.Base_partition.t * placement) list ->
  (t, string list) result
(** Validates: region indices must be dense ([0 .. region_count-1], each
    non-empty), every configuration mode must have a provider, and no
    region may have two active partitions in the same configuration. *)

val make_exn :
  Prdesign.Design.t -> (Cluster.Base_partition.t * placement) list -> t

(** {1 Structure} *)

val region_members : t -> int -> int list
(** Partition indices placed in region [r], ascending priority. *)

val static_members : t -> int list

val region_resources : t -> int -> Fpga.Resource.t
(** Component-wise maximum over the region's partitions (paper eq. 2) —
    only one partition is resident at a time. *)

val region_frames : t -> int -> int
(** Tile-quantised frames of the region (paper eqs. 3–6). *)

val static_resources : t -> Fpga.Resource.t
(** Sum of static partitions' resources plus the design's static
    overhead — static clusters all coexist. *)

val reconfigurable_resources : t -> Fpga.Resource.t
(** Sum over regions of the tile-quantised region resources. *)

val total_resources : t -> Fpga.Resource.t

val active_partition : t -> config:int -> region:int -> int option
(** The partition resident in a region under a configuration, or [None]
    when the configuration does not use the region (content is then a
    don't-care and no reconfiguration is required). *)

(** {1 Reference schemes} (paper §IV-A) *)

val single_region : Prdesign.Design.t -> t
(** Every configuration's mode set becomes one cluster; all clusters share
    the single region, which must be large enough for the largest
    configuration. Every transition reconfigures the whole region. *)

val one_module_per_region : Prdesign.Design.t -> t
(** One region per module, each hosting the module's modes as singleton
    clusters, sized for the largest mode. *)

val fully_static : Prdesign.Design.t -> t
(** Every mode in the static area; zero reconfiguration time, maximum
    area. *)

val describe : t -> string
(** Multi-line human-readable allocation table (like paper Tables III/V). *)

val pp : Format.formatter -> t -> unit
