lib/core/anneal.ml: Array Cluster Compatibility Float Fpga Fun Hashtbl Int Int64 List Prdesign Prtelemetry Scheme
