lib/core/allocator.mli: Cluster Fpga Prdesign Scheme
