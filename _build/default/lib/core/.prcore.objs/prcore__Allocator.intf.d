lib/core/allocator.mli: Cluster Fpga Prdesign Prtelemetry Scheme
