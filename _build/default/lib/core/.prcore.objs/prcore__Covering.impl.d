lib/core/covering.ml: Array Cluster List Prdesign Prtelemetry
