lib/core/cost.mli: Format Fpga Scheme
