lib/core/scheme.mli: Cluster Compatibility Format Fpga Prdesign
