lib/core/engine.ml: Allocator Array Cluster Cost Covering Format Fpga List Option Prdesign Prtelemetry Result Scheme
