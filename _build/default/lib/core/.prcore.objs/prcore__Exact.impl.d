lib/core/exact.ml: Array Cluster Compatibility Fpga List Option Prdesign Scheme
