lib/core/allocator.ml: Array Cluster Compatibility Cost Fpga List Option Prdesign Prtelemetry Scheme
