lib/core/scheme_xml.ml: Array Cluster Fun Int List Prdesign Printf Scheme String Xmllite
