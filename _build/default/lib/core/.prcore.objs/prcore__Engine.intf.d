lib/core/engine.mli: Allocator Cluster Cost Fpga Prdesign Prtelemetry Scheme
