lib/core/exact.mli: Cluster Fpga Prdesign Scheme
