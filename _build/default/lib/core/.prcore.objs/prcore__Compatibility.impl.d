lib/core/compatibility.ml: Array Cluster List Prdesign
