lib/core/compatibility.mli: Cluster Prdesign
