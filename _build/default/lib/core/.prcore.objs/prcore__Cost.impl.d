lib/core/cost.ml: Array Format Fpga Prdesign Scheme
