lib/core/scheme.ml: Array Buffer Cluster Compatibility Format Fpga Int List Prdesign Prgraph Printf String
