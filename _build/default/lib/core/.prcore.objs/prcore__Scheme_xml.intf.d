lib/core/scheme_xml.mli: Prdesign Scheme Xmllite
