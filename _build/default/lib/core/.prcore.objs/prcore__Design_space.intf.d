lib/core/design_space.mli: Engine Fpga Prdesign Prtelemetry
