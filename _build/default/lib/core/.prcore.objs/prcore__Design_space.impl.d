lib/core/design_space.ml: Buffer Cost Engine Fpga Int List Prdesign Printf Prtelemetry Scheme
