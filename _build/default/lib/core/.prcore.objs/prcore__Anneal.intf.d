lib/core/anneal.mli: Cluster Fpga Prdesign Scheme
