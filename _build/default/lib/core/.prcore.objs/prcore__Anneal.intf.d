lib/core/anneal.mli: Cluster Fpga Prdesign Prtelemetry Scheme
