lib/core/covering.mli: Cluster Prdesign Prtelemetry
