module Design = Prdesign.Design
module Base_partition = Cluster.Base_partition
module Resource = Fpga.Resource

type placement = Static | Region of int

type t = {
  design : Design.t;
  partitions : Base_partition.t array;
  placement : placement array;
  region_count : int;
  analysis : Compatibility.t;
}

let validate design partitions placement =
  let issues = ref [] in
  let problem fmt = Printf.ksprintf (fun s -> issues := s :: !issues) fmt in
  let region_count =
    Array.fold_left
      (fun acc -> function Static -> acc | Region r -> max acc (r + 1))
      0 placement
  in
  let members = Array.make region_count [] in
  Array.iteri
    (fun p -> function
      | Static -> ()
      | Region r ->
        if r < 0 then problem "partition %d assigned a negative region" p
        else members.(r) <- p :: members.(r))
    placement;
  Array.iteri
    (fun r l -> if l = [] then problem "region %d is empty" r)
    members;
  let analysis = Compatibility.analyse design partitions in
  if not (Compatibility.covers_design analysis) then
    problem "some configuration modes have no providing partition";
  let configs = Design.configuration_count design in
  Array.iteri
    (fun r l ->
      for c = 0 to configs - 1 do
        let active =
          List.filter (fun p -> Compatibility.active analysis ~bp:p ~config:c) l
        in
        if List.length active > 1 then
          problem
            "region %d hosts %d simultaneously active partitions in \
             configuration %d"
            r (List.length active) c
      done)
    members;
  (List.rev !issues, region_count, analysis)

let make design assignment =
  let partitions = Array.of_list (List.map fst assignment) in
  let placement = Array.of_list (List.map snd assignment) in
  match validate design partitions placement with
  | [], region_count, analysis ->
    Ok { design; partitions; placement; region_count; analysis }
  | issues, _, _ -> Error issues

let make_exn design assignment =
  match make design assignment with
  | Ok t -> t
  | Error issues -> invalid_arg ("Scheme.make: " ^ String.concat "; " issues)

let check_region t r =
  if r < 0 || r >= t.region_count then
    invalid_arg "Scheme: region index out of range"

let region_members t r =
  check_region t r;
  let acc = ref [] in
  Array.iteri
    (fun p -> function
      | Region r' when r' = r -> acc := p :: !acc
      | Region _ | Static -> ())
    t.placement;
  List.rev !acc

let static_members t =
  let acc = ref [] in
  Array.iteri
    (fun p -> function Static -> acc := p :: !acc | Region _ -> ())
    t.placement;
  List.rev !acc

let region_resources t r =
  List.fold_left
    (fun acc p -> Resource.max acc t.partitions.(p).Base_partition.resources)
    Resource.zero (region_members t r)

let region_frames t r = Fpga.Tile.frames_of_resources (region_resources t r)

let static_resources t =
  List.fold_left
    (fun acc p -> Resource.add acc t.partitions.(p).Base_partition.resources)
    t.design.Design.static_overhead (static_members t)

let reconfigurable_resources t =
  let acc = ref Resource.zero in
  for r = 0 to t.region_count - 1 do
    acc := Resource.add !acc (Fpga.Tile.quantize (region_resources t r))
  done;
  !acc

let total_resources t =
  Resource.add (reconfigurable_resources t) (static_resources t)

let active_partition t ~config ~region =
  check_region t region;
  List.find_opt
    (fun p -> Compatibility.active t.analysis ~bp:p ~config)
    (region_members t region)

(* Reference schemes. *)

let single_region design =
  let matrix = Prgraph.Conn_matrix.make design in
  let clusters =
    List.sort_uniq compare
      (List.init (Design.configuration_count design) (fun c ->
           Design.config_mode_ids design c))
  in
  let assignment =
    List.map
      (fun modes ->
        let freq = Prgraph.Conn_matrix.support matrix modes in
        (Base_partition.make design ~modes ~freq, Region 0))
      clusters
  in
  make_exn design assignment

let one_module_per_region design =
  let matrix = Prgraph.Conn_matrix.make design in
  let assignment =
    List.filter_map
      (fun mode ->
        let freq = Prgraph.Conn_matrix.node_weight matrix mode in
        if freq = 0 then None
        else
          Some
            ( Base_partition.make design ~modes:[ mode ] ~freq,
              Region (Design.module_of_mode design mode) ))
      (Design.all_mode_ids design)
  in
  (* Region ids must be dense: re-number the used modules. *)
  let used_modules =
    List.sort_uniq Int.compare
      (List.filter_map
         (fun (_, p) -> match p with Region r -> Some r | Static -> None)
         assignment)
  in
  let renumber r =
    let rec index i = function
      | [] -> invalid_arg "Scheme.one_module_per_region: unknown module"
      | m :: rest -> if m = r then i else index (i + 1) rest
    in
    index 0 used_modules
  in
  make_exn design
    (List.map
       (fun (bp, p) ->
         match p with
         | Region r -> (bp, Region (renumber r))
         | Static -> (bp, Static))
       assignment)

let fully_static design =
  let matrix = Prgraph.Conn_matrix.make design in
  let assignment =
    List.filter_map
      (fun mode ->
        let freq = Prgraph.Conn_matrix.node_weight matrix mode in
        if freq = 0 then None
        else Some (Base_partition.make design ~modes:[ mode ] ~freq, Static))
      (Design.all_mode_ids design)
  in
  make_exn design assignment

let describe t =
  let buf = Buffer.create 256 in
  let bp_label p = Base_partition.label t.design t.partitions.(p) in
  let statics = static_members t in
  if statics <> [] then
    Buffer.add_string buf
      (Printf.sprintf "static: %s\n"
         (String.concat ", " (List.map bp_label statics)));
  for r = 0 to t.region_count - 1 do
    let res = region_resources t r in
    Buffer.add_string buf
      (Printf.sprintf "PRR%d: %s  (area %s, %d frames)\n" (r + 1)
         (String.concat ", " (List.map bp_label (region_members t r)))
         (Resource.to_string res) (region_frames t r))
  done;
  Buffer.contents buf

let pp ppf t = Format.pp_print_string ppf (describe t)
