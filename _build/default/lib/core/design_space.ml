module Design = Prdesign.Design
module Resource = Fpga.Resource
module Tile = Fpga.Tile

type point = {
  budget : Resource.t;
  total_frames : int;
  worst_frames : int;
  used : Resource.t;
  used_frames : int;
  regions : int;
  statics : int;
}

let scaled_budgets ?(steps = 8) design =
  if steps < 2 then invalid_arg "Design_space.scaled_budgets: need >= 2 steps";
  let lo =
    Resource.add
      (Tile.quantize (Design.min_region_requirement design))
      design.Design.static_overhead
  in
  let hi =
    Resource.add (Design.static_requirement design)
      design.Design.static_overhead
  in
  let lerp a b i =
    a + ((b - a) * i / (steps - 1))
  in
  List.init steps (fun i ->
      { Resource.clb = lerp lo.Resource.clb hi.Resource.clb i;
        bram = lerp lo.Resource.bram hi.Resource.bram i;
        dsp = lerp lo.Resource.dsp hi.Resource.dsp i })

let sweep ?options ?(telemetry = Prtelemetry.null) design ~budgets =
  Prtelemetry.with_span telemetry "design_space.sweep"
    ~attrs:
      [ ("design", Prtelemetry.Json.String design.Design.name);
        ("budgets", Prtelemetry.Json.Int (List.length budgets)) ]
  @@ fun () ->
  let feasible = Prtelemetry.counter telemetry "design_space.feasible" in
  let infeasible = Prtelemetry.counter telemetry "design_space.infeasible" in
  List.map
    (fun budget ->
      match
        Engine.solve ?options ~telemetry ~target:(Engine.Budget budget) design
      with
      | Error _ ->
        Prtelemetry.Counter.incr infeasible;
        if Prtelemetry.tracing telemetry then
          Prtelemetry.point telemetry "design_space.point"
            ~attrs:
              [ ( "budget",
                  Prtelemetry.Json.String (Resource.to_string budget) );
                ("feasible", Prtelemetry.Json.Bool false) ];
        (budget, None)
      | Ok outcome ->
        Prtelemetry.Counter.incr feasible;
        if Prtelemetry.tracing telemetry then
          Prtelemetry.point telemetry "design_space.point"
            ~attrs:
              [ ( "budget",
                  Prtelemetry.Json.String (Resource.to_string budget) );
                ("feasible", Prtelemetry.Json.Bool true);
                ( "total_frames",
                  Prtelemetry.Json.Int
                    outcome.Engine.evaluation.Cost.total_frames ) ];
        let e = outcome.Engine.evaluation in
        ( budget,
          Some
            { budget;
              total_frames = e.Cost.total_frames;
              worst_frames = e.Cost.worst_frames;
              used = e.Cost.used;
              used_frames = Tile.frames_of_resources e.Cost.used;
              regions = outcome.Engine.scheme.Scheme.region_count;
              statics =
                List.length (Scheme.static_members outcome.Engine.scheme) } ))
    budgets

let frontier points =
  let sorted =
    List.sort
      (fun a b ->
        match Int.compare a.used_frames b.used_frames with
        | 0 -> Int.compare a.total_frames b.total_frames
        | c -> c)
      points
  in
  let rec keep best_time = function
    | [] -> []
    | p :: rest ->
      if p.total_frames < best_time then p :: keep p.total_frames rest
      else keep best_time rest
  in
  keep max_int sorted

let suggest_device design =
  List.find_opt
    (fun device ->
      match Engine.solve ~target:(Engine.Fixed device) design with
      | Ok _ -> true
      | Error _ -> false)
    (List.sort Fpga.Device.compare_capacity Fpga.Device.sweep)

let render results =
  let rows =
    List.map
      (fun (budget, point) ->
        match point with
        | None ->
          [ Resource.to_string budget; "-"; "-"; "-"; "-"; "infeasible" ]
        | Some p ->
          [ Resource.to_string budget;
            string_of_int p.total_frames;
            string_of_int p.worst_frames;
            string_of_int p.used_frames;
            string_of_int p.regions;
            string_of_int p.statics ])
      results
  in
  let buf = Buffer.create 256 in
  let widths = [ 34; 10; 8; 10; 7; 7 ] in
  let emit cells =
    List.iteri
      (fun i cell ->
        Buffer.add_string buf
          (Printf.sprintf "%*s  " (List.nth widths i) cell))
      cells;
    Buffer.add_char buf '\n'
  in
  emit [ "budget"; "total"; "worst"; "area(f)"; "regions"; "static" ];
  List.iter emit rows;
  Buffer.contents buf
