(** Simulated-annealing region allocation — the search strategy of the
    related work the paper compares against (Montone et al. use simulated
    annealing for PR partitioning/floorplanning). Provided as an
    alternative to the greedy {!Allocator} over the same solution space
    (cluster → region/static assignments, identical cost model), so the
    two heuristics and the exact optimum ({!Exact}) can be compared like
    for like. *)

type options = {
  iterations : int;  (** Metropolis steps. Default 60_000. *)
  initial_temperature : float;  (** In frames; default 20_000. *)
  cooling : float;  (** Geometric factor per step, in (0, 1). Default
                        0.9998. *)
  seed : int;  (** Deterministic RNG seed. Default 1. *)
  promote_static : bool;  (** Allow the static move. Default [true]. *)
}

val default_options : options

val allocate :
  ?options:options ->
  ?telemetry:Prtelemetry.t ->
  budget:Fpga.Resource.t ->
  Prdesign.Design.t ->
  Cluster.Base_partition.t list ->
  Scheme.t option
(** Best {e feasible} scheme encountered during the anneal (infeasible
    states are explored via an area-deficit penalty but never returned),
    or [None] when none was found. Deterministic in [options.seed].

    [telemetry] (default {!Prtelemetry.null}, free): an
    ["anneal.allocate"] span; ["anneal.steps"], ["anneal.accepted"],
    ["anneal.best_updates"] and ["core.cost_evaluations"] counters; and
    an ["anneal.best"] trajectory event per improvement (when
    tracing). *)
