(** Region allocation search (paper §IV-C, second half).

    Starting from the candidate partition set with every base partition in
    its own region — the static-equivalent allocation with minimum
    reconfiguration time — the search repeatedly applies one of two moves:

    - {b merge} two compatible regions (always shrinks area, never reduces
      reconfiguration time), used to squeeze the design into the budget;
    - {b promote} a region's partitions to the static area (eliminates
      that region's reconfiguration cost, usually at an area cost), the
      paper's "move modes into the static region when possible".

    While over budget the search picks the move that most reduces the
    resource deficit (ties broken by least added reconfiguration time);
    once within budget it keeps applying time-reducing promotions. The
    greedy pass is restarted from each of the most promising first moves
    and the best feasible scheme wins. *)

type options = {
  max_restarts : int;
      (** Number of alternative first moves to try in addition to the pure
          greedy pass. Default 8. *)
  promote_static : bool;
      (** Enable static promotion (disable for the ablation). Default
          [true]. *)
}

val default_options : options

val allocate :
  ?options:options ->
  ?pair_weight:(int -> int -> float) ->
  ?telemetry:Prtelemetry.t ->
  budget:Fpga.Resource.t ->
  Prdesign.Design.t ->
  Cluster.Base_partition.t list ->
  Scheme.t option
(** Best feasible scheme found for one candidate partition set (priority
    order preserved), or [None] when no explored allocation fits the
    budget. Schemes are compared by total reconfiguration frames, then
    worst-case frames, then area.

    [pair_weight i j] weights the cost of configurations [i] and [j]
    requiring different region contents (unordered pairs, [i < j]). The
    default unit weight yields the paper's total reconfiguration time;
    passing long-run transition rates (see [Runtime.Markov.edge_rates],
    symmetrised) optimises the expected reconfiguration rate instead —
    the paper's future-work extension.

    [telemetry] (default {!Prtelemetry.null}, free): an
    ["alloc.allocate"] span; ["alloc.moves_evaluated"],
    ["alloc.merges_accepted"], ["alloc.promotions"], ["alloc.restarts"]
    and ["core.cost_evaluations"] counters; and an ["alloc.best"] event
    each time a restart improves the incumbent (when tracing). *)
