(** XML persistence for partitioning schemes, so a partitioning decision
    can be reviewed, versioned and fed to downstream build steps without
    re-running the algorithm.

    Schema:
    {v
    <scheme design="video-receiver">
      <partition freq="2" placement="region:0">
        <mode name="F.Filter1"/> ...
      </partition>
      <partition freq="1" placement="static"> ... </partition>
      ...
    </scheme>
    v}

    Partitions appear in priority order; mode names are the qualified
    ["Module.mode"] names of the design. *)

exception Malformed of string

val to_xml : Scheme.t -> Xmllite.Xml.t
val to_string : Scheme.t -> string

val of_xml : Prdesign.Design.t -> Xmllite.Xml.t -> Scheme.t
(** Re-binds a stored scheme against [design]: mode names are resolved
    and the scheme is re-validated.
    @raise Malformed on schema errors, unknown modes, a design-name
    mismatch, or a scheme that no longer validates. *)

val of_string : Prdesign.Design.t -> string -> Scheme.t
val save_file : string -> Scheme.t -> unit
val load_file : Prdesign.Design.t -> string -> Scheme.t
