module Xml = Xmllite.Xml
module Design = Prdesign.Design
module Base_partition = Cluster.Base_partition

exception Malformed of string

let fail fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt

let placement_to_string = function
  | Scheme.Static -> "static"
  | Scheme.Region r -> Printf.sprintf "region:%d" r

let placement_of_string s =
  if s = "static" then Scheme.Static
  else
    match String.split_on_char ':' s with
    | [ "region"; n ] -> (
      match int_of_string_opt n with
      | Some r when r >= 0 -> Scheme.Region r
      | Some _ | None -> fail "bad region index in placement %S" s)
    | _ -> fail "bad placement %S" s

let to_xml (s : Scheme.t) =
  let design = s.Scheme.design in
  let partition_xml p (bp : Base_partition.t) =
    Xml.Element
      ( "partition",
        [ ("freq", string_of_int bp.freq);
          ("placement", placement_to_string s.Scheme.placement.(p)) ],
        List.map
          (fun mode ->
            Xml.Element ("mode", [ ("name", Design.mode_name design mode) ], []))
          bp.modes )
  in
  Xml.Element
    ( "scheme",
      [ ("design", design.Design.name) ],
      List.mapi partition_xml (Array.to_list s.Scheme.partitions) )

let to_string s = Xml.to_string (to_xml s)

let mode_by_name design name =
  let rec search = function
    | [] -> fail "unknown mode %S in stored scheme" name
    | id :: rest -> if Design.mode_name design id = name then id else search rest
  in
  search (Design.all_mode_ids design)

let of_xml design root =
  if Xml.tag root <> "scheme" then fail "root element must be <scheme>";
  (match Xml.attr "design" root with
   | Some name when name = design.Design.name -> ()
   | Some name ->
     fail "scheme was saved for design %S, not %S" name design.Design.name
   | None -> fail "<scheme> is missing the design attribute");
  let assignment =
    List.map
      (fun node ->
        let freq =
          match Xml.int_attr "freq" node with
          | Some f when f > 0 -> f
          | Some _ | None -> fail "partition needs a positive freq"
        in
        let placement =
          match Xml.attr "placement" node with
          | Some p -> placement_of_string p
          | None -> fail "partition is missing its placement"
        in
        let modes =
          List.map
            (fun mode_node ->
              match Xml.attr "name" mode_node with
              | Some name -> mode_by_name design name
              | None -> fail "<mode> is missing its name")
            (Xml.find_all "mode" node)
        in
        if modes = [] then fail "partition with no modes";
        let modes = List.sort_uniq Int.compare modes in
        (Base_partition.make design ~modes ~freq, placement))
      (Xml.find_all "partition" root)
  in
  match Scheme.make design assignment with
  | Ok scheme -> scheme
  | Error issues ->
    fail "stored scheme no longer validates: %s" (String.concat "; " issues)

let of_string design s = of_xml design (Xml.parse_string s)

let save_file path s =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string s))

let load_file design path = of_xml design (Xml.parse_file path)
