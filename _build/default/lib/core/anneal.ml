module Design = Prdesign.Design
module Base_partition = Cluster.Base_partition
module Resource = Fpga.Resource
module Tile = Fpga.Tile

type options = {
  iterations : int;
  initial_temperature : float;
  cooling : float;
  seed : int;
  promote_static : bool;
}

let default_options =
  { iterations = 60_000;
    initial_temperature = 20_000.;
    cooling = 0.9998;
    seed = 1;
    promote_static = true }

(* A self-contained SplitMix64 stream so prcore does not depend on the
   workload-generator library. *)
module Rng = struct
  type t = { mutable state : int64 }

  let mix z =
    let z =
      Int64.mul
        (Int64.logxor z (Int64.shift_right_logical z 30))
        0xBF58476D1CE4E5B9L
    in
    let z =
      Int64.mul
        (Int64.logxor z (Int64.shift_right_logical z 27))
        0x94D049BB133111EBL
    in
    Int64.logxor z (Int64.shift_right_logical z 31)

  let make seed = { state = mix (Int64.of_int seed) }

  let next t =
    t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
    mix t.state

  let int t bound =
    Int64.to_int
      (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int bound))

  let float t =
    Int64.to_float (Int64.shift_right_logical (next t) 11)
    /. 9007199254740992.
end

(* Scalar area in frame-equivalents, matching the greedy allocator. *)
let scalar (r : Resource.t) =
  (float_of_int r.clb *. 1.8)
  +. (float_of_int r.bram *. 7.5)
  +. (float_of_int r.dsp *. 3.5)

let deficit ~budget (used : Resource.t) =
  let over a b = max 0 (a - b) in
  scalar
    { Resource.clb = over used.clb budget.Resource.clb;
      bram = over used.bram budget.Resource.bram;
      dsp = over used.dsp budget.Resource.dsp }

(* Energy of a placement: total reconfiguration frames plus a soft
   penalty per frame-equivalent of budget overrun — steep enough that
   feasible states win, shallow enough that the walk can cross short
   infeasible ridges at moderate temperatures. Evaluates the whole state;
   n and c are small. Returns (energy, feasible, total). *)
let evaluate ~budget ~design ~parts ~activity placement =
  let n = Array.length parts in
  let configs = Design.configuration_count design in
  let region_ids =
    List.sort_uniq Int.compare
      (List.filter (fun r -> r >= 0) (Array.to_list placement))
  in
  let static_res = ref design.Design.static_overhead in
  Array.iteri
    (fun p r ->
      if r = -1 then
        static_res := Resource.add !static_res parts.(p).Base_partition.resources)
    placement;
  let used = ref !static_res in
  let total = ref 0 in
  let valid = ref true in
  List.iter
    (fun region ->
      let members = ref [] in
      for p = n - 1 downto 0 do
        if placement.(p) = region then members := p :: !members
      done;
      let resources =
        List.fold_left
          (fun acc p -> Resource.max acc parts.(p).Base_partition.resources)
          Resource.zero !members
      in
      used := Resource.add !used (Tile.quantize resources);
      let frames = Tile.frames_of_resources resources in
      (* Resident per configuration; two active members in one config make
         the placement invalid. *)
      let column = Array.make configs (-1) in
      List.iter
        (fun p ->
          for c = 0 to configs - 1 do
            if activity.(p).(c) then
              if column.(c) >= 0 then valid := false else column.(c) <- p
          done)
        !members;
      let conflicts = ref 0 in
      for i = 0 to configs - 1 do
        for j = i + 1 to configs - 1 do
          if column.(i) >= 0 && column.(j) >= 0 && column.(i) <> column.(j)
          then incr conflicts
        done
      done;
      total := !total + (frames * !conflicts))
    region_ids;
  if not !valid then (infinity, false, max_int)
  else begin
    let d = deficit ~budget !used in
    let energy = float_of_int !total +. (200. *. d) in
    (energy, d = 0., !total)
  end

let scheme_of_placement design parts placement =
  (* Renumber regions densely in order of first appearance. *)
  let mapping = Hashtbl.create 8 in
  let next = ref 0 in
  let resolved =
    Array.map
      (fun r ->
        if r = -1 then Scheme.Static
        else begin
          let id =
            match Hashtbl.find_opt mapping r with
            | Some id -> id
            | None ->
              let id = !next in
              Hashtbl.add mapping r id;
              incr next;
              id
          in
          Scheme.Region id
        end)
      placement
  in
  Scheme.make design
    (List.mapi (fun p bp -> (bp, resolved.(p))) (Array.to_list parts))

let allocate ?(options = default_options) ?(telemetry = Prtelemetry.null)
    ~budget design partitions =
  match partitions with
  | [] -> None
  | _ ->
    Prtelemetry.with_span telemetry "anneal.allocate" (fun () ->
        let steps = Prtelemetry.counter telemetry "anneal.steps" in
        let accepted_moves = Prtelemetry.counter telemetry "anneal.accepted" in
        let best_updates =
          Prtelemetry.counter telemetry "anneal.best_updates"
        in
        let cost_evaluations =
          Prtelemetry.counter telemetry "core.cost_evaluations"
        in
        let parts = Array.of_list partitions in
        let n = Array.length parts in
        let analysis = Compatibility.analyse design parts in
        if not (Compatibility.covers_design analysis) then None
        else begin
          let configs = Design.configuration_count design in
          let activity =
            Array.init n (fun p ->
                Array.init configs (fun c ->
                    Compatibility.active analysis ~bp:p ~config:c))
          in
          let rng = Rng.make options.seed in
          (* Start all-separate: region id = partition index. *)
          let placement = Array.init n Fun.id in
          let eval placement =
            Prtelemetry.Counter.incr cost_evaluations;
            evaluate ~budget ~design ~parts ~activity placement
          in
          let energy, feasible, total = eval placement in
          let current_energy = ref energy in
          let best =
            ref (if feasible then Some (Array.copy placement, total) else None)
          in
          let temperature = ref options.initial_temperature in
          for iteration = 1 to options.iterations do
            Prtelemetry.Counter.incr steps;
            let p = Rng.int rng n in
            let old_region = placement.(p) in
            (* Candidate target: another partition's region, a fresh region
               (its own index), or static. *)
            let choice =
              Rng.int rng (n + if options.promote_static then 2 else 1)
            in
            let target =
              if choice < n then placement.(Rng.int rng n)
              else if choice = n then p
              else -1
            in
            if target <> old_region then begin
              placement.(p) <- target;
              let energy, feasible, total = eval placement in
              let delta = energy -. !current_energy in
              let accept =
                delta < 0.
                || (Float.is_finite delta
                    && Rng.float rng < Float.exp (-.delta /. !temperature))
              in
              if accept then begin
                Prtelemetry.Counter.incr accepted_moves;
                current_energy := energy;
                if feasible then
                  match !best with
                  | Some (_, best_total) when best_total <= total -> ()
                  | Some _ | None ->
                    Prtelemetry.Counter.incr best_updates;
                    if Prtelemetry.tracing telemetry then
                      Prtelemetry.point telemetry "anneal.best"
                        ~attrs:
                          [ ("iteration", Prtelemetry.Json.Int iteration);
                            ("total_frames", Prtelemetry.Json.Int total) ];
                    best := Some (Array.copy placement, total)
              end
              else placement.(p) <- old_region
            end;
            temperature := !temperature *. options.cooling
          done;
          match !best with
          | None -> None
          | Some (placement, _) ->
            (match scheme_of_placement design parts placement with
             | Ok scheme -> Some scheme
             | Error _ -> None)
        end)
