(** Exact region allocation by branch-and-bound, for small candidate sets.

    Enumerates every partition of the candidate set into compatible region
    groups plus an optional static set (canonical set-partition order, so
    each allocation is visited once), pruning branches whose committed
    reconfiguration cost already exceeds the incumbent. Exponential in the
    candidate-set size — intended for validating the greedy
    {!Allocator} (optimality-gap tests and the ablation bench), not for
    production runs on large designs. *)

type result = {
  scheme : Scheme.t option;
      (** Best feasible allocation, or [None] when nothing fits. *)
  optimal : bool;
      (** False when the state budget was exhausted before the search
          space was covered; the scheme (if any) is then only the best
          incumbent. *)
  states : int;  (** Assignments expanded. *)
}

val allocate :
  ?promote_static:bool ->
  ?max_states:int ->
  budget:Fpga.Resource.t ->
  Prdesign.Design.t ->
  Cluster.Base_partition.t list ->
  result
(** [allocate ~budget design candidate_set]. Defaults: promotion enabled,
    [max_states = 2_000_000]. Candidate partitions keep their priority
    order (it defines activity, as in {!Allocator}). Schemes are compared
    by total reconfiguration frames, then worst-case frames, then area in
    frames. *)
