module Design = Prdesign.Design

type t = {
  design : Design.t;
  bits : bool array array;  (* configurations x modes *)
  node_weights : int array;
}

let make design =
  let c = Design.configuration_count design in
  let m = Design.mode_count design in
  let bits = Array.make_matrix c m false in
  for i = 0 to c - 1 do
    List.iter (fun j -> bits.(i).(j) <- true) (Design.config_mode_ids design i)
  done;
  let node_weights = Array.make m 0 in
  for i = 0 to c - 1 do
    for j = 0 to m - 1 do
      if bits.(i).(j) then node_weights.(j) <- node_weights.(j) + 1
    done
  done;
  { design; bits; node_weights }

let design t = t.design
let configurations t = Array.length t.bits
let modes t = Array.length t.node_weights

let check_config t i =
  if i < 0 || i >= configurations t then
    invalid_arg "Conn_matrix: configuration index out of range"

let check_mode t j =
  if j < 0 || j >= modes t then
    invalid_arg "Conn_matrix: mode index out of range"

let mem t ~config ~mode =
  check_config t config;
  check_mode t mode;
  t.bits.(config).(mode)

let node_weight t j =
  check_mode t j;
  t.node_weights.(j)

let edge_weight t i j =
  check_mode t i;
  check_mode t j;
  let count = ref 0 in
  for c = 0 to configurations t - 1 do
    if t.bits.(c).(i) && t.bits.(c).(j) then incr count
  done;
  !count

let support t mode_list =
  List.iter (check_mode t) mode_list;
  let count = ref 0 in
  for c = 0 to configurations t - 1 do
    if List.for_all (fun j -> t.bits.(c).(j)) mode_list then incr count
  done;
  !count

let supported t mode_list = support t mode_list > 0

let config_modes t i =
  check_config t i;
  let acc = ref [] in
  for j = modes t - 1 downto 0 do
    if t.bits.(i).(j) then acc := j :: !acc
  done;
  !acc

let active_modes t =
  List.filter (fun j -> t.node_weights.(j) > 0) (List.init (modes t) Fun.id)

let pp ppf t =
  let labels = List.map (Design.mode_label t.design) (List.init (modes t) Fun.id) in
  let width =
    List.fold_left (fun acc s -> max acc (String.length s)) 4 labels
  in
  Format.fprintf ppf "%*s" 8 "";
  List.iter (fun l -> Format.fprintf ppf " %*s" width l) labels;
  Format.pp_print_newline ppf ();
  Array.iteri
    (fun i row ->
      Format.fprintf ppf "%8s" t.design.Design.configurations.(i).Prdesign.Configuration.name;
      Array.iter
        (fun b -> Format.fprintf ppf " %*d" width (if b then 1 else 0))
        row;
      Format.pp_print_newline ppf ())
    t.bits
