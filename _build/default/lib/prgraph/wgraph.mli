(** A small dense weighted undirected graph over integer nodes, grown one
    edge at a time — the network the agglomerative clustering operates on.
    Weights are fixed at creation (co-occurrence counts); links are added
    incrementally in descending weight order by the clustering loop. *)

type t

val create : n:int -> weight:(int -> int -> int) -> t
(** [create ~n ~weight] builds a graph on nodes [0..n-1] with no links.
    [weight] must be symmetric and non-negative; it is sampled once per
    unordered pair. @raise Invalid_argument on negative [n] or weight. *)

val size : t -> int
val weight : t -> int -> int -> int
val linked : t -> int -> int -> bool

val link : t -> int -> int -> unit
(** Connect two distinct nodes. Linking an already-linked pair or a node to
    itself raises [Invalid_argument]. *)

val link_count : t -> int

val neighbours : t -> int -> int list
(** Linked neighbours, ascending. *)

val common_neighbours : t -> int -> int -> int list

val is_clique : t -> int list -> bool
(** True when every pair of distinct listed nodes is linked (singletons and
    the empty list are cliques). *)

val min_internal_weight : t -> int list -> int
(** Minimum edge weight over pairs of the list — the paper's frequency
    weight for sub-graphs with more than one edge.
    @raise Invalid_argument on a list with fewer than two nodes. *)

val positive_pairs_desc : t -> (int * int * int) list
(** All unordered pairs with positive weight as [(i, j, w)], [i < j],
    sorted by descending weight then ascending [(i, j)] — the clustering
    iteration order. *)
