(** The connectivity matrix of a design (paper §IV-C): one row per
    configuration, one column per mode; element [(i, j)] is set when mode
    [j] is active in configuration [i]. Node and edge weights for the
    clustering graph are column sums and pairwise co-occurrence counts. *)

type t

val make : Prdesign.Design.t -> t
val design : t -> Prdesign.Design.t
val configurations : t -> int
val modes : t -> int

val mem : t -> config:int -> mode:int -> bool
(** @raise Invalid_argument on out-of-range indices. *)

val node_weight : t -> int -> int
(** Number of configurations using the mode (columnar sum). A mode that no
    configuration uses — the paper's "mode 0" — has weight 0 and takes no
    part in clustering. *)

val edge_weight : t -> int -> int -> int
(** [edge_weight t i j] is the number of configurations in which modes [i]
    and [j] are both active. [edge_weight t i i = node_weight t i]. *)

val support : t -> int list -> int
(** Number of configurations containing {e every} mode of the list — the
    frequency with which the cluster occurs. [support t [] ] is the number
    of configurations. *)

val supported : t -> int list -> bool
(** [support t modes > 0]. *)

val config_modes : t -> int -> int list
(** Modes active in a configuration, ascending. *)

val active_modes : t -> int list
(** Modes with positive node weight, ascending — the clustering nodes. *)

val pp : Format.formatter -> t -> unit
(** Renders the matrix with mode labels, like the paper's display. *)
