lib/prgraph/wgraph.ml: Array Int List
