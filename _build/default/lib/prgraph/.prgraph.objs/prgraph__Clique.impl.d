lib/prgraph/clique.ml: Array Fun Int List Wgraph
