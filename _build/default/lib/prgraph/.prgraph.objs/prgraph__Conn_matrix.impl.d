lib/prgraph/conn_matrix.ml: Array Format Fun List Prdesign String
