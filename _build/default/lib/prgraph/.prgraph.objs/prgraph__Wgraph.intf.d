lib/prgraph/wgraph.mli:
