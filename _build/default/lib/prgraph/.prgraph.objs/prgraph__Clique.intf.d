lib/prgraph/clique.mli: Wgraph
