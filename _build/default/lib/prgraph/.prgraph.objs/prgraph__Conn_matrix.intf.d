lib/prgraph/conn_matrix.mli: Format Prdesign
