type t = {
  n : int;
  weights : int array array;
  adj : bool array array;
  mutable links : int;
}

let create ~n ~weight =
  if n < 0 then invalid_arg "Wgraph.create: negative size";
  let weights = Array.make_matrix n n 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let w = weight i j in
      if w < 0 then invalid_arg "Wgraph.create: negative weight";
      weights.(i).(j) <- w;
      weights.(j).(i) <- w
    done
  done;
  { n; weights; adj = Array.make_matrix n n false; links = 0 }

let size t = t.n

let check t i =
  if i < 0 || i >= t.n then invalid_arg "Wgraph: node out of range"

let weight t i j =
  check t i;
  check t j;
  t.weights.(i).(j)

let linked t i j =
  check t i;
  check t j;
  t.adj.(i).(j)

let link t i j =
  check t i;
  check t j;
  if i = j then invalid_arg "Wgraph.link: self loop";
  if t.adj.(i).(j) then invalid_arg "Wgraph.link: already linked";
  t.adj.(i).(j) <- true;
  t.adj.(j).(i) <- true;
  t.links <- t.links + 1

let link_count t = t.links

let neighbours t i =
  check t i;
  let acc = ref [] in
  for j = t.n - 1 downto 0 do
    if t.adj.(i).(j) then acc := j :: !acc
  done;
  !acc

let common_neighbours t i j =
  check t i;
  check t j;
  let acc = ref [] in
  for k = t.n - 1 downto 0 do
    if t.adj.(i).(k) && t.adj.(j).(k) then acc := k :: !acc
  done;
  !acc

let is_clique t nodes =
  let rec pairs = function
    | [] -> true
    | x :: rest -> List.for_all (fun y -> linked t x y) rest && pairs rest
  in
  pairs nodes

let min_internal_weight t nodes =
  let rec fold acc = function
    | [] -> acc
    | x :: rest ->
      let acc =
        List.fold_left (fun acc y -> min acc (weight t x y)) acc rest
      in
      fold acc rest
  in
  match nodes with
  | [] | [ _ ] ->
    invalid_arg "Wgraph.min_internal_weight: need at least two nodes"
  | _ -> fold max_int nodes

let positive_pairs_desc t =
  let acc = ref [] in
  for i = 0 to t.n - 1 do
    for j = i + 1 to t.n - 1 do
      let w = t.weights.(i).(j) in
      if w > 0 then acc := (i, j, w) :: !acc
    done
  done;
  List.sort
    (fun (i1, j1, w1) (i2, j2, w2) ->
      match Int.compare w2 w1 with
      | 0 -> (match Int.compare i1 i2 with 0 -> Int.compare j1 j2 | c -> c)
      | c -> c)
    !acc
