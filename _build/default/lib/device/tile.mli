(** Virtex-5 tile model.

    A tile is one device row high and one resource column wide; it is the
    smallest unit the supported PR flow can reconfigure. Each tile kind packs
    a fixed number of primitives and occupies a fixed number of configuration
    frames (paper §IV-B). *)

type kind = Clb | Bram | Dsp

val all_kinds : kind list
val kind_name : kind -> string
val pp_kind : Format.formatter -> kind -> unit

val primitives_per_tile : kind -> int
(** CLB tile: 20 CLBs; BRAM tile: 4 Block RAMs; DSP tile: 8 DSP slices. *)

val frames_per_tile : kind -> int
(** CLB tile: 36 frames; BRAM tile: 30; DSP tile: 28. *)

val tiles_for : kind -> int -> int
(** [tiles_for kind primitives] is the number of whole tiles needed to host
    [primitives] primitives of [kind] (partial tiles are never shared, so
    the count is rounded up). @raise Invalid_argument on negative input. *)

val tiles_of_resources : Resource.t -> int * int * int
(** Tiles per kind as [(clb_tiles, bram_tiles, dsp_tiles)]. *)

val quantize : Resource.t -> Resource.t
(** Round a resource requirement up to whole-tile granularity, i.e. the
    primitives actually consumed once tiles are allocated. *)

val frames_of_resources : Resource.t -> int
(** Area in frames of a region hosting [r] (paper eqs. 1/6): tiles are
    rounded up per kind and weighted by {!frames_per_tile}. *)
