(** Virtex-5 configuration-frame constants (UG191).

    The configuration frame is the smallest addressable unit of the
    configuration memory; reconfiguration time is proportional to the number
    of frames rewritten, so frames are the paper's cost unit. *)

val words_per_frame : int
(** 41 32-bit words per frame. *)

val bits_per_frame : int
(** 1312 bits ([words_per_frame * 32]). *)

val bytes_per_frame : int
(** 164 bytes. *)

val bytes_of_frames : int -> int
(** Raw payload size of a partial bitstream covering [n] frames.
    @raise Invalid_argument on negative [n]. *)

val bits_of_frames : int -> int
(** @raise Invalid_argument on negative count. *)
