type t = {
  width_bits : int;
  clock_hz : float;
  overhead_s : float;
  throughput_derate : float;
}

let make ?(width_bits = 32) ?(clock_hz = 100e6) ?(overhead_s = 0.)
    ?(throughput_derate = 1.) () =
  if width_bits <> 8 && width_bits <> 16 && width_bits <> 32 then
    invalid_arg "Icap.make: width must be 8, 16 or 32";
  if clock_hz <= 0. then invalid_arg "Icap.make: non-positive clock";
  if overhead_s < 0. then invalid_arg "Icap.make: negative overhead";
  if throughput_derate <= 0. || throughput_derate > 1. then
    invalid_arg "Icap.make: derate must lie in (0, 1]";
  { width_bits; clock_hz; overhead_s; throughput_derate }

let default = make ()

let bytes_per_second t =
  float_of_int (t.width_bits / 8) *. t.clock_hz *. t.throughput_derate

let seconds_of_frames t n =
  if n < 0 then invalid_arg "Icap.seconds_of_frames: negative frames";
  if n = 0 then 0.
  else
    t.overhead_s
    +. (float_of_int (Frame.bytes_of_frames n) /. bytes_per_second t)

let frames_per_second t =
  bytes_per_second t /. float_of_int Frame.bytes_per_frame

let pp ppf t =
  Format.fprintf ppf "ICAP(%d-bit @@ %.0f MHz, %.1f MB/s)" t.width_bits
    (t.clock_hz /. 1e6)
    (bytes_per_second t /. 1e6)
