(** Cross-family architecture constants.

    The engine itself is calibrated for Virtex-5 (the paper's target; see
    {!Tile}), but the cost law — frames per tile kind times tiles touched —
    carries across Xilinx generations with different constants. This
    module captures documented approximations of the Virtex-4 and
    Virtex-6 geometries alongside Virtex-5, for what-if comparisons of a
    partitioning's reconfiguration cost on neighbouring families
    (`bench arch`). *)

type kind_geometry = {
  primitives_per_tile : int;
  frames_per_tile : int;
}

type t = {
  name : string;
  words_per_frame : int;  (** 32-bit configuration words. *)
  clb : kind_geometry;
  bram : kind_geometry;
  dsp : kind_geometry;
}

val virtex4 : t
(** 16-CLB rows, 41-word frames (UG071-approximate). *)

val virtex5 : t
(** The paper's target; identical constants to {!Tile}. *)

val virtex6 : t
(** 40-CLB rows, 81-word frames (UG360-approximate). *)

val all : t list

val geometry : t -> Tile.kind -> kind_geometry

val frames_of_resources : t -> Resource.t -> int
(** {!Tile.frames_of_resources} generalised: per-kind ceil-division by
    the family's tile capacity, weighted by its frames per tile. *)

val bytes_per_frame : t -> int
val bytes_of_resources : t -> Resource.t -> int
(** Partial-bitstream payload bytes for a region of the given size. *)

val pp : Format.formatter -> t -> unit
