type family = Lx | Lxt | Sxt | Fxt

type t = {
  name : string;
  short : string;
  family : family;
  rows : int;
  clb_cols : int;
  bram_cols : int;
  dsp_cols : int;
}

let family_name = function
  | Lx -> "LX"
  | Lxt -> "LXT"
  | Sxt -> "SXT"
  | Fxt -> "FXT"

let resources d =
  let per kind cols = d.rows * cols * Tile.primitives_per_tile kind in
  { Resource.clb = per Tile.Clb d.clb_cols;
    bram = per Tile.Bram d.bram_cols;
    dsp = per Tile.Dsp d.dsp_cols }

let total_tiles d = d.rows * (d.clb_cols + d.bram_cols + d.dsp_cols)

let total_frames d =
  let per kind cols = d.rows * cols * Tile.frames_per_tile kind in
  per Tile.Clb d.clb_cols + per Tile.Bram d.bram_cols
  + per Tile.Dsp d.dsp_cols

let pp ppf d =
  Format.fprintf ppf "%s(%a)" d.short Resource.pp (resources d)

let device short family rows clb_cols bram_cols dsp_cols =
  { name = "XC5V" ^ short; short; family; rows; clb_cols; bram_cols; dsp_cols }

(* Capacities are tile-consistent approximations of DS100; see DESIGN.md. *)
let lx20t = device "LX20T" Lxt 3 52 2 1
let lx30 = device "LX30" Lx 4 60 2 1
let fx30t = device "FX30T" Fxt 4 64 4 2
let sx35t = device "SX35T" Sxt 4 68 5 6
let fx50t = device "FX50T" Fxt 6 60 5 3
let sx70t = device "SX70T" Sxt 8 70 5 5
let fx70t = device "FX70T" Fxt 8 70 5 2
let fx95t = device "FX95T" Fxt 10 74 6 2
let fx130t = device "FX130T" Fxt 10 102 8 4
let fx200t = device "FX200T" Fxt 12 128 10 4

let sweep =
  [ lx20t; lx30; fx30t; sx35t; fx50t; sx70t; fx95t; fx130t; fx200t ]

let compare_capacity a b =
  let ra = resources a and rb = resources b in
  match Resource.compare ra rb with
  | 0 -> String.compare a.name b.name
  | c -> c

let catalogue =
  List.sort compare_capacity
    [ lx20t; lx30; fx30t; sx35t; fx50t; sx70t; fx70t; fx95t; fx130t; fx200t ]

let find key =
  let key = String.uppercase_ascii key in
  List.find_opt (fun d -> d.short = key || d.name = key) catalogue

let find_exn key =
  match find key with
  | Some d -> d
  | None -> raise Not_found

let smallest_fitting ?(within = sweep) need =
  let fits d = Resource.fits need ~within:(resources d) in
  List.find_opt fits (List.sort compare_capacity within)

let next_larger ?(within = sweep) d =
  let sorted = List.sort compare_capacity within in
  let rec after = function
    | [] -> None
    | x :: rest ->
      if compare_capacity x d > 0 then Some x else after rest
  in
  after sorted
