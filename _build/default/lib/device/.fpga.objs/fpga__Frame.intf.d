lib/device/frame.mli:
