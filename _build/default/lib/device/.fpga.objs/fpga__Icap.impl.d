lib/device/icap.ml: Format Frame
