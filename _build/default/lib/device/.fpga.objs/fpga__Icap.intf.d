lib/device/icap.mli: Format
