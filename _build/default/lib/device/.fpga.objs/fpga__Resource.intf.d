lib/device/resource.mli: Format
