lib/device/tile.mli: Format Resource
