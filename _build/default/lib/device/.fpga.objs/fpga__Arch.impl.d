lib/device/arch.ml: Format Frame Resource Tile
