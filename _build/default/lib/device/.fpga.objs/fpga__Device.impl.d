lib/device/device.ml: Format List Resource String Tile
