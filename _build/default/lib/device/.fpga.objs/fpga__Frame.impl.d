lib/device/frame.ml:
