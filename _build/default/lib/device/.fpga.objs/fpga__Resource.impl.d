lib/device/resource.ml: Format Int List Stdlib
