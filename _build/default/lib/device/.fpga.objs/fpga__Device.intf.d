lib/device/device.mli: Format Resource
