lib/device/tile.ml: Format Resource
