lib/device/arch.mli: Format Resource Tile
