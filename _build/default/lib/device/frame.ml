let words_per_frame = 41
let bits_per_frame = words_per_frame * 32
let bytes_per_frame = bits_per_frame / 8

let check n =
  if n < 0 then invalid_arg "Frame: negative frame count"

let bytes_of_frames n =
  check n;
  n * bytes_per_frame

let bits_of_frames n =
  check n;
  n * bits_per_frame
