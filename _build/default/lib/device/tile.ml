type kind = Clb | Bram | Dsp

let all_kinds = [ Clb; Bram; Dsp ]

let kind_name = function
  | Clb -> "CLB"
  | Bram -> "BRAM"
  | Dsp -> "DSP"

let pp_kind ppf kind = Format.pp_print_string ppf (kind_name kind)

let primitives_per_tile = function
  | Clb -> 20
  | Bram -> 4
  | Dsp -> 8

let frames_per_tile = function
  | Clb -> 36
  | Bram -> 30
  | Dsp -> 28

let tiles_for kind primitives =
  if primitives < 0 then invalid_arg "Tile.tiles_for: negative count";
  let per = primitives_per_tile kind in
  (primitives + per - 1) / per

let tiles_of_resources (r : Resource.t) =
  (tiles_for Clb r.clb, tiles_for Bram r.bram, tiles_for Dsp r.dsp)

let quantize (r : Resource.t) =
  let clb_t, bram_t, dsp_t = tiles_of_resources r in
  { Resource.clb = clb_t * primitives_per_tile Clb;
    bram = bram_t * primitives_per_tile Bram;
    dsp = dsp_t * primitives_per_tile Dsp }

let frames_of_resources r =
  let clb_t, bram_t, dsp_t = tiles_of_resources r in
  (clb_t * frames_per_tile Clb)
  + (bram_t * frames_per_tile Bram)
  + (dsp_t * frames_per_tile Dsp)
