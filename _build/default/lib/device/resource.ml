type t = { clb : int; bram : int; dsp : int }

let zero = { clb = 0; bram = 0; dsp = 0 }

let make ?(bram = 0) ?(dsp = 0) clb =
  if clb < 0 || bram < 0 || dsp < 0 then
    invalid_arg "Resource.make: negative component";
  { clb; bram; dsp }

let add a b = { clb = a.clb + b.clb; bram = a.bram + b.bram; dsp = a.dsp + b.dsp }
let sub a b = { clb = a.clb - b.clb; bram = a.bram - b.bram; dsp = a.dsp - b.dsp }

let max a b =
  { clb = Stdlib.max a.clb b.clb;
    bram = Stdlib.max a.bram b.bram;
    dsp = Stdlib.max a.dsp b.dsp }

let sum l = List.fold_left add zero l
let scale k a = { clb = k * a.clb; bram = k * a.bram; dsp = k * a.dsp }

let fits r ~within =
  r.clb <= within.clb && r.bram <= within.bram && r.dsp <= within.dsp

let dominates a b = fits b ~within:a
let is_zero r = r.clb = 0 && r.bram = 0 && r.dsp = 0
let equal a b = a.clb = b.clb && a.bram = b.bram && a.dsp = b.dsp

let compare a b =
  match Int.compare a.clb b.clb with
  | 0 -> (match Int.compare a.bram b.bram with
          | 0 -> Int.compare a.dsp b.dsp
          | c -> c)
  | c -> c

let total_primitives r = r.clb + r.bram + r.dsp

let pp ppf r =
  Format.fprintf ppf "{clb=%d; bram=%d; dsp=%d}" r.clb r.bram r.dsp

let to_string r = Format.asprintf "%a" pp r
