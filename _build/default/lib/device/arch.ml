type kind_geometry = {
  primitives_per_tile : int;
  frames_per_tile : int;
}

type t = {
  name : string;
  words_per_frame : int;
  clb : kind_geometry;
  bram : kind_geometry;
  dsp : kind_geometry;
}

let virtex4 =
  { name = "Virtex-4";
    words_per_frame = 41;
    clb = { primitives_per_tile = 16; frames_per_tile = 22 };
    bram = { primitives_per_tile = 4; frames_per_tile = 21 };
    dsp = { primitives_per_tile = 8; frames_per_tile = 21 } }

let virtex5 =
  { name = "Virtex-5";
    words_per_frame = Frame.words_per_frame;
    clb =
      { primitives_per_tile = Tile.primitives_per_tile Clb;
        frames_per_tile = Tile.frames_per_tile Clb };
    bram =
      { primitives_per_tile = Tile.primitives_per_tile Bram;
        frames_per_tile = Tile.frames_per_tile Bram };
    dsp =
      { primitives_per_tile = Tile.primitives_per_tile Dsp;
        frames_per_tile = Tile.frames_per_tile Dsp } }

let virtex6 =
  { name = "Virtex-6";
    words_per_frame = 81;
    clb = { primitives_per_tile = 40; frames_per_tile = 36 };
    bram = { primitives_per_tile = 8; frames_per_tile = 28 };
    dsp = { primitives_per_tile = 16; frames_per_tile = 28 } }

let all = [ virtex4; virtex5; virtex6 ]

let geometry t = function
  | Tile.Clb -> t.clb
  | Tile.Bram -> t.bram
  | Tile.Dsp -> t.dsp

let tiles_for geometry primitives =
  if primitives < 0 then invalid_arg "Arch: negative primitive count";
  (primitives + geometry.primitives_per_tile - 1)
  / geometry.primitives_per_tile

let frames_of_resources t (r : Resource.t) =
  (tiles_for t.clb r.clb * t.clb.frames_per_tile)
  + (tiles_for t.bram r.bram * t.bram.frames_per_tile)
  + (tiles_for t.dsp r.dsp * t.dsp.frames_per_tile)

let bytes_per_frame t = t.words_per_frame * 4

let bytes_of_resources t r = frames_of_resources t r * bytes_per_frame t

let pp ppf t =
  Format.fprintf ppf "%s (%d-word frames)" t.name t.words_per_frame
