(** Internal Configuration Access Port (ICAP) timing model.

    Converts frame counts — the paper's cost unit — into wall-clock
    reconfiguration time. The default models the 32-bit ICAP of Virtex-5 at
    100 MHz (400 MB/s peak) with an optional fixed per-reconfiguration
    overhead for bitstream fetch and controller set-up, matching the
    open-source controller the paper's static overhead is based on. *)

type t = private {
  width_bits : int;  (** Port width: 8, 16 or 32 bits. *)
  clock_hz : float;  (** ICAP clock frequency. *)
  overhead_s : float;  (** Fixed per-reconfiguration latency (fetch, sync). *)
  throughput_derate : float;
      (** Fraction of peak throughput actually sustained, in (0, 1]. *)
}

val default : t
(** 32-bit @ 100 MHz, no overhead, full throughput. *)

val make :
  ?width_bits:int ->
  ?clock_hz:float ->
  ?overhead_s:float ->
  ?throughput_derate:float ->
  unit ->
  t
(** @raise Invalid_argument on a non-positive clock or derate outside
    (0, 1], or a width other than 8, 16 or 32. *)

val bytes_per_second : t -> float
(** Sustained configuration throughput. *)

val seconds_of_frames : t -> int -> float
(** Wall-clock time of one reconfiguration writing [n] frames, including
    the fixed overhead (zero frames cost zero: no reconfiguration).
    @raise Invalid_argument on negative [n]. *)

val frames_per_second : t -> float
val pp : Format.formatter -> t -> unit
