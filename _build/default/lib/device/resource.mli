(** Resource vectors over the three Virtex-5 reconfigurable primitive kinds
    tracked by the paper: CLBs, Block RAMs and DSP slices. *)

type t = { clb : int; bram : int; dsp : int }

val zero : t
val make : ?bram:int -> ?dsp:int -> int -> t
(** [make ~bram ~dsp clb]; omitted components default to [0].
    @raise Invalid_argument if any component is negative. *)

val add : t -> t -> t
val sub : t -> t -> t
(** Component-wise subtraction; may produce negative components (use
    {!fits} to test availability). *)

val max : t -> t -> t
(** Component-wise maximum — the area law for two clusters sharing a
    region (paper eq. 2 applied per resource kind). *)

val sum : t list -> t
val scale : int -> t -> t

val fits : t -> within:t -> bool
(** [fits r ~within:avail] iff every component of [r] is [<=] the
    corresponding component of [avail]. *)

val dominates : t -> t -> bool
(** [dominates a b] iff [fits b ~within:a]. *)

val is_zero : t -> bool

val equal : t -> t -> bool
val compare : t -> t -> int
(** Total order: lexicographic on (clb, bram, dsp). *)

val total_primitives : t -> int
(** Sum of the three components; a crude scalar size used only for
    tie-breaking orderings. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
