type t = { name : string; resources : Fpga.Resource.t }

let make name resources =
  if name = "" then invalid_arg "Mode.make: empty name";
  { name; resources }

let equal a b = a.name = b.name && Fpga.Resource.equal a.resources b.resources

let pp ppf m =
  Format.fprintf ppf "%s%a" m.name Fpga.Resource.pp m.resources
