(** A complete PR application description: modules with their modes, the set
    of valid configurations, and the static-logic overhead. This is the
    partitioner's input (paper Fig. 2, "design description").

    Modes are also addressable by a flat {e mode id} (module-major order),
    which is the node identity used by the connectivity matrix and the
    clustering graph. *)

type mode_id = int
(** Flat mode index in [0 .. mode_count - 1]. *)

type t = private {
  name : string;
  modules : Pmodule.t array;
  configurations : Configuration.t array;
  static_overhead : Fpga.Resource.t;
      (** Resources of the always-present static logic (processor, ICAP
          controller, buses). *)
  offsets : int array;
      (** Internal index: flat id of each module's mode 0. Use {!mode_id}. *)
  owner : int array;
      (** Internal index: module of each flat id. Use {!module_of_mode}. *)
}

val create :
  ?allow_unused_modes:bool ->
  ?static_overhead:Fpga.Resource.t ->
  name:string ->
  modules:Pmodule.t list ->
  configurations:Configuration.t list ->
  unit ->
  (t, string list) result
(** Validates and indexes a design. Errors (all reported at once) include:
    empty name, no modules, no configurations, duplicate module or
    configuration names, out-of-range module/mode references, and modes
    never used by any configuration (the paper's generator guarantees every
    mode is exercised, so an unused mode is normally a specification
    error). Pass [~allow_unused_modes:true] for designs that legitimately
    declare spare modes, like the case study's zero-area "None" recovery
    mode. *)

val create_exn :
  ?allow_unused_modes:bool ->
  ?static_overhead:Fpga.Resource.t ->
  name:string ->
  modules:Pmodule.t list ->
  configurations:Configuration.t list ->
  unit ->
  t
(** @raise Invalid_argument with the concatenated issue list. *)

(** {1 Sizes} *)

val module_count : t -> int
val mode_count : t -> int
val configuration_count : t -> int

(** {1 Flat mode ids} *)

val mode_id : t -> module_idx:int -> mode_idx:int -> mode_id
(** @raise Invalid_argument on out-of-range indices. *)

val module_of_mode : t -> mode_id -> int
val mode_idx_of_mode : t -> mode_id -> int
val mode_resources : t -> mode_id -> Fpga.Resource.t

val mode_name : t -> mode_id -> string
(** Qualified ["Module.mode"] name, unique within the design. *)

val mode_label : t -> mode_id -> string
(** Compact label: module name + 1-based mode ordinal (e.g. ["A1"]), the
    convention of the paper's running example. *)

val all_mode_ids : t -> mode_id list

val config_mode_ids : t -> int -> mode_id list
(** Sorted flat mode ids active in configuration [i].
    @raise Invalid_argument on an out-of-range configuration index. *)

(** {1 Aggregate areas} *)

val config_resources : t -> int -> Fpga.Resource.t
(** Sum of mode resources of configuration [i] (static overhead excluded). *)

val min_region_requirement : t -> Fpga.Resource.t
(** Component-wise maximum of {!config_resources} over all configurations —
    the area of a single region hosting every configuration, i.e. the
    minimum possible reconfigurable area for the design (paper §IV-C). *)

val modular_requirement : t -> Fpga.Resource.t
(** Sum over modules of the largest mode — the one-module-per-region
    footprint. *)

val static_requirement : t -> Fpga.Resource.t
(** Sum of every mode of every module — the fully static footprint
    (static overhead excluded; add it separately when sizing devices). *)

val pp : Format.formatter -> t -> unit
val summary : t -> string
