type severity = Info | Warning

type finding = { severity : severity; code : string; message : string }

let severity_name = function Info -> "info" | Warning -> "warning"

let check (d : Design.t) =
  let findings = ref [] in
  let report severity code fmt =
    Printf.ksprintf
      (fun message -> findings := { severity; code; message } :: !findings)
      fmt
  in
  let configs = Design.configuration_count d in
  let modules = Design.module_count d in
  (* Per-mode usage counts. *)
  let used = Array.make (Design.mode_count d) 0 in
  for c = 0 to configs - 1 do
    List.iter (fun m -> used.(m) <- used.(m) + 1) (Design.config_mode_ids d c)
  done;
  Array.iteri
    (fun id count ->
      if count = 0 then
        report Warning "unused-mode" "mode %s is used by no configuration"
          (Design.mode_name d id))
    used;
  (* Duplicate configuration contents. *)
  let contents = List.init configs (fun c -> (Design.config_mode_ids d c, c)) in
  let rec duplicates = function
    | [] -> ()
    | (modes, c) :: rest ->
      (match List.assoc_opt modes rest with
       | Some c' ->
         report Warning "duplicate-configuration"
           "configurations %s and %s use exactly the same modes"
           d.Design.configurations.(c).Configuration.name
           d.Design.configurations.(c').Configuration.name
       | None -> ());
      duplicates rest
  in
  duplicates contents;
  (* Per-module analyses. *)
  for m = 0 to modules - 1 do
    let pm = d.Design.modules.(m) in
    let name = pm.Pmodule.name in
    let mode_count = Pmodule.mode_count pm in
    let usage_by_mode =
      List.init mode_count (fun k -> used.(Design.mode_id d ~module_idx:m ~mode_idx:k))
    in
    let appearances = List.fold_left ( + ) 0 usage_by_mode in
    let distinct_used =
      List.length (List.filter (fun u -> u > 0) usage_by_mode)
    in
    if appearances > 0 && distinct_used = 1 then begin
      let k =
        match
          List.find_index (fun u -> u > 0) usage_by_mode
        with
        | Some k -> k
        | None -> 0
      in
      report Warning "constant-module"
        "module %s always runs mode %s; implementing it statically avoids a \
         reconfigurable region"
        name pm.Pmodule.modes.(k).Mode.name
    end;
    if appearances = configs * 1 && distinct_used > 1 && appearances = configs
    then
      report Info "always-present-module"
        "module %s is active in every configuration" name;
    (* Zero-area and dominant modes. *)
    let sizes =
      List.init mode_count (fun k ->
          Fpga.Resource.total_primitives pm.Pmodule.modes.(k).Mode.resources)
    in
    List.iteri
      (fun k size ->
        if size = 0 then
          report Info "zero-area-mode"
            "mode %s.%s has no resources; omitting the module from the \
             configuration expresses absence directly"
            name pm.Pmodule.modes.(k).Mode.name)
      sizes;
    let positive = List.filter (fun s -> s > 0) sizes in
    (match positive with
     | [] -> ()
     | smallest :: _ ->
       let smallest = List.fold_left min smallest positive in
       List.iteri
         (fun k size ->
           if size >= 10 * smallest && smallest > 0 then
             report Info "dominant-mode"
               "mode %s.%s is %dx larger than %s's smallest mode and will \
                dictate its region's size"
               name pm.Pmodule.modes.(k).Mode.name (size / smallest) name)
         sizes);
    (* Identical modes. *)
    for a = 0 to mode_count - 1 do
      for b = a + 1 to mode_count - 1 do
        if
          Fpga.Resource.equal pm.Pmodule.modes.(a).Mode.resources
            pm.Pmodule.modes.(b).Mode.resources
        then
          report Info "identical-modes"
            "modes %s.%s and %s.%s have identical resources" name
            pm.Pmodule.modes.(a).Mode.name name pm.Pmodule.modes.(b).Mode.name
      done
    done
  done;
  (* Configuration-space coverage. *)
  let space =
    Array.fold_left
      (fun acc pm -> acc *. float_of_int (Pmodule.mode_count pm + 1))
      1. d.Design.modules
  in
  let coverage = float_of_int configs /. space *. 100. in
  if coverage < 10. && space > 8. then
    report Info "sparse-configurations"
      "the %d configurations cover %.1f%% of the %d possible mode \
       combinations"
      configs coverage (int_of_float space);
  List.stable_sort
    (fun a b ->
      match (a.severity, b.severity) with
      | Warning, Info -> -1
      | Info, Warning -> 1
      | (Info | Warning), _ -> 0)
    (List.rev !findings)

let render findings =
  match findings with
  | [] -> "no findings\n"
  | findings ->
    String.concat ""
      (List.map
         (fun f ->
           Printf.sprintf "%-7s [%s] %s\n" (severity_name f.severity) f.code
             f.message)
         findings)
