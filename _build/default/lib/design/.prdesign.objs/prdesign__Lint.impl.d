lib/design/lint.ml: Array Configuration Design Fpga List Mode Pmodule Printf String
