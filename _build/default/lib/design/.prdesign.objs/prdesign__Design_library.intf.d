lib/design/design_library.mli: Design Fpga
