lib/design/design.mli: Configuration Format Fpga Pmodule
