lib/design/pmodule.ml: Array Format Fpga List Mode Printf String
