lib/design/design.ml: Array Configuration Format Fpga Fun List Mode Pmodule Printf String
