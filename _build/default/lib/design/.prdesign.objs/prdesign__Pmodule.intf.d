lib/design/pmodule.mli: Format Fpga Mode
