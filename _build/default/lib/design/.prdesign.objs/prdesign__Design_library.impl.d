lib/design/design_library.ml: Configuration Design Fpga List Mode Pmodule Printf
