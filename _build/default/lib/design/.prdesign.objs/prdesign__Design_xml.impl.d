lib/design/design_xml.ml: Array Configuration Design Fpga Fun List Mode Option Pmodule Printf String Xmllite
