lib/design/mode.mli: Format Fpga
