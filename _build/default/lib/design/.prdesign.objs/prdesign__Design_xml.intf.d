lib/design/design_xml.mli: Design Xmllite
