lib/design/configuration.ml: Format Int List Printf
