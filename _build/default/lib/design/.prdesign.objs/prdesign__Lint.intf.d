lib/design/lint.mli: Design
