lib/design/configuration.mli: Format
