lib/design/mode.ml: Format Fpga
