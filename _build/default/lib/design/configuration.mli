(** A configuration: one valid combination of module modes that the adaptive
    system may run (paper §III-A). Modules absent from a configuration are
    simply not listed — the paper's "mode 0" convention (§IV-D). *)

type t = private {
  name : string;
  choices : (int * int) list;
      (** [(module_index, mode_index)] pairs, sorted by module index, at
          most one per module. *)
}

val make : string -> (int * int) list -> t
(** @raise Invalid_argument on an empty name, a negative index, duplicate
    module indices, or an empty choice list. *)

val mode_of_module : t -> int -> int option
(** [mode_of_module c m] is the mode index module [m] runs in
    configuration [c], or [None] when the module is absent. *)

val modules_used : t -> int list
(** Sorted module indices present in the configuration. *)

val cardinal : t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
