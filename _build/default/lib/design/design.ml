type mode_id = int

type t = {
  name : string;
  modules : Pmodule.t array;
  configurations : Configuration.t array;
  static_overhead : Fpga.Resource.t;
  (* Derived index: [offsets.(m)] is the flat id of module [m]'s mode 0;
     [owner.(id)] maps a flat id back to its module index. *)
  offsets : int array;
  owner : int array;
}

let module_count t = Array.length t.modules
let mode_count t = Array.length t.owner
let configuration_count t = Array.length t.configurations

let validate ~allow_unused_modes ~name ~(modules : Pmodule.t list)
    ~(configurations : Configuration.t list) =
  let issues = ref [] in
  let problem fmt = Printf.ksprintf (fun s -> issues := s :: !issues) fmt in
  if name = "" then problem "design name is empty";
  if modules = [] then problem "design has no modules";
  if configurations = [] then problem "design has no configurations";
  let module_names = List.map (fun (m : Pmodule.t) -> m.name) modules in
  if
    List.length (List.sort_uniq String.compare module_names)
    <> List.length module_names
  then problem "duplicate module names";
  let config_names = List.map (fun (c : Configuration.t) -> c.name) configurations in
  if
    List.length (List.sort_uniq String.compare config_names)
    <> List.length config_names
  then problem "duplicate configuration names";
  let marr = Array.of_list modules in
  let nmod = Array.length marr in
  let used = Array.map (fun m -> Array.make (Pmodule.mode_count m) false) marr in
  List.iter
    (fun (c : Configuration.t) ->
      List.iter
        (fun (m, k) ->
          if m >= nmod then
            problem "configuration %s references module %d (only %d modules)"
              c.name m nmod
          else if k >= Pmodule.mode_count marr.(m) then
            problem "configuration %s references mode %d of module %s (%d modes)"
              c.name k marr.(m).Pmodule.name
              (Pmodule.mode_count marr.(m))
          else used.(m).(k) <- true)
        c.choices)
    configurations;
  if !issues = [] && not allow_unused_modes then
    Array.iteri
      (fun m flags ->
        Array.iteri
          (fun k seen ->
            if not seen then
              problem "mode %s.%s is never used by any configuration"
                marr.(m).Pmodule.name marr.(m).Pmodule.modes.(k).Mode.name)
          flags)
      used;
  List.rev !issues

let create ?(allow_unused_modes = false)
    ?(static_overhead = Fpga.Resource.zero) ~name ~modules ~configurations
    () =
  match validate ~allow_unused_modes ~name ~modules ~configurations with
  | _ :: _ as issues -> Error issues
  | [] ->
    let marr = Array.of_list modules in
    let nmod = Array.length marr in
    let offsets = Array.make nmod 0 in
    let total = ref 0 in
    Array.iteri
      (fun m pm ->
        offsets.(m) <- !total;
        total := !total + Pmodule.mode_count pm)
      marr;
    let owner = Array.make !total 0 in
    Array.iteri
      (fun m pm ->
        for k = 0 to Pmodule.mode_count pm - 1 do
          owner.(offsets.(m) + k) <- m
        done)
      marr;
    Ok
      { name;
        modules = marr;
        configurations = Array.of_list configurations;
        static_overhead;
        offsets;
        owner }

let create_exn ?allow_unused_modes ?static_overhead ~name ~modules
    ~configurations () =
  match
    create ?allow_unused_modes ?static_overhead ~name ~modules ~configurations
      ()
  with
  | Ok t -> t
  | Error issues ->
    invalid_arg ("Design.create_exn: " ^ String.concat "; " issues)

let mode_id t ~module_idx ~mode_idx =
  if module_idx < 0 || module_idx >= module_count t then
    invalid_arg "Design.mode_id: module index out of range";
  if mode_idx < 0 || mode_idx >= Pmodule.mode_count t.modules.(module_idx) then
    invalid_arg "Design.mode_id: mode index out of range";
  t.offsets.(module_idx) + mode_idx

let check_mode t id =
  if id < 0 || id >= mode_count t then
    invalid_arg "Design: mode id out of range"

let module_of_mode t id =
  check_mode t id;
  t.owner.(id)

let mode_idx_of_mode t id =
  check_mode t id;
  id - t.offsets.(t.owner.(id))

let mode_resources t id =
  let m = module_of_mode t id in
  t.modules.(m).Pmodule.modes.(mode_idx_of_mode t id).Mode.resources

let mode_name t id =
  let m = module_of_mode t id in
  t.modules.(m).Pmodule.name ^ "."
  ^ t.modules.(m).Pmodule.modes.(mode_idx_of_mode t id).Mode.name

let mode_label t id =
  let m = module_of_mode t id in
  Printf.sprintf "%s%d" t.modules.(m).Pmodule.name (mode_idx_of_mode t id + 1)

let all_mode_ids t = List.init (mode_count t) Fun.id

let check_config t i =
  if i < 0 || i >= configuration_count t then
    invalid_arg "Design: configuration index out of range"

let config_mode_ids t i =
  check_config t i;
  List.map
    (fun (m, k) -> t.offsets.(m) + k)
    t.configurations.(i).Configuration.choices

let config_resources t i =
  check_config t i;
  Fpga.Resource.sum (List.map (mode_resources t) (config_mode_ids t i))

let min_region_requirement t =
  let acc = ref Fpga.Resource.zero in
  for i = 0 to configuration_count t - 1 do
    acc := Fpga.Resource.max !acc (config_resources t i)
  done;
  !acc

let modular_requirement t =
  Array.fold_left
    (fun acc m -> Fpga.Resource.add acc (Pmodule.largest_mode m))
    Fpga.Resource.zero t.modules

let static_requirement t =
  Array.fold_left
    (fun acc m -> Fpga.Resource.add acc (Pmodule.modes_total m))
    Fpga.Resource.zero t.modules

let summary t =
  Printf.sprintf "%s: %d modules, %d modes, %d configurations" t.name
    (module_count t) (mode_count t) (configuration_count t)

let pp ppf t = Format.pp_print_string ppf (summary t)
