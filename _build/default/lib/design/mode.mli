(** A mode: one mutually-exclusive implementation of a module, with the
    resource requirement reported by synthesis (paper §III-A). *)

type t = { name : string; resources : Fpga.Resource.t }

val make : string -> Fpga.Resource.t -> t
(** @raise Invalid_argument on an empty name. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
