(** XML serialisation of design descriptions — the input format of the
    paper's proposed tool flow (Fig. 2 takes "design files … and a list of
    valid configurations … in XML format").

    Schema:
    {v
    <design name="..." allow_unused_modes="true|false">
      <static clb="90" bram="8" dsp="0"/>          (optional)
      <module name="F">
        <mode name="Filter1" clb="818" bram="0" dsp="28"/>
        ...
      </module>
      ...
      <configurations>
        <configuration name="c1">
          <use module="F" mode="Filter1"/>
          ...
        </configuration>
        ...
      </configurations>
    </design>
    v} *)

exception Malformed of string
(** Raised when the XML is well-formed but does not match the schema, or
    when the resulting design fails {!Design.create} validation. *)

val of_xml : Xmllite.Xml.t -> Design.t
val to_xml : Design.t -> Xmllite.Xml.t

val load_string : string -> Design.t
(** @raise Malformed on schema/validation errors.
    @raise Xmllite.Xml.Parse_error on malformed XML. *)

val load_file : string -> Design.t
val save_file : string -> Design.t -> unit
val to_string : Design.t -> string
