(** Design-description linting: static diagnostics for PR designs that
    pass validation but will partition poorly or suggest a simpler
    implementation. Complements {!Design.create}'s hard errors. *)

type severity = Info | Warning

type finding = {
  severity : severity;
  code : string;  (** Stable identifier, e.g. ["unused-mode"]. *)
  message : string;
}

val check : Design.t -> finding list
(** All diagnostics, warnings first. Codes currently produced:

    - [unused-mode] (warning): a mode no configuration uses (possible
      under [allow_unused_modes]).
    - [duplicate-configuration] (warning): two configurations with
      identical mode sets — they are one operating point.
    - [constant-module] (warning): a module that runs the same mode in
      every configuration it appears in; a static implementation of that
      mode avoids a region entirely.
    - [zero-area-mode] (info): a mode with no resources — usually the
      "absent" idiom that configuration omission (paper §IV-D) expresses
      better.
    - [dominant-mode] (info): a mode at least 10x larger than its
      module's smallest mode — it will dictate any region it lands in.
    - [identical-modes] (info): two modes of one module with identical
      resources.
    - [sparse-configurations] (info): the configuration list covers less
      than 10 % of the combinatorically possible mode combinations —
      expected for adaptive systems, but worth confirming it is intended.
    - [always-present-module] (info): a module active in every
      configuration (no "mode 0" use). *)

val severity_name : severity -> string
val render : finding list -> string
(** One line per finding; ["no findings\n"] when clean. *)
