type t = { name : string; modes : Mode.t array }

let make name modes =
  if name = "" then invalid_arg "Pmodule.make: empty name";
  if modes = [] then invalid_arg "Pmodule.make: a module needs >= 1 mode";
  let names = List.map (fun (m : Mode.t) -> m.name) modes in
  let sorted = List.sort_uniq String.compare names in
  if List.length sorted <> List.length names then
    invalid_arg (Printf.sprintf "Pmodule.make: duplicate mode name in %s" name);
  { name; modes = Array.of_list modes }

let mode_count t = Array.length t.modes

let find_mode t name =
  let rec search i =
    if i >= Array.length t.modes then None
    else if t.modes.(i).Mode.name = name then Some i
    else search (i + 1)
  in
  search 0

let largest_mode t =
  Array.fold_left
    (fun acc (m : Mode.t) -> Fpga.Resource.max acc m.resources)
    Fpga.Resource.zero t.modes

let modes_total t =
  Array.fold_left
    (fun acc (m : Mode.t) -> Fpga.Resource.add acc m.resources)
    Fpga.Resource.zero t.modes

let pp ppf t =
  Format.fprintf ppf "%s[%a]" t.name
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       Mode.pp)
    (Array.to_list t.modes)
