(** A reconfigurable module: a processing unit with one or more mutually
    exclusive modes ("PR module" in the paper; named [Pmodule] to avoid
    clashing with the OCaml keyword). A single-mode module models the
    paper's §IV-D "one-off" modules: absent from some configurations. *)

type t = private { name : string; modes : Mode.t array }

val make : string -> Mode.t list -> t
(** @raise Invalid_argument on an empty name, an empty mode list, or
    duplicate mode names. *)

val mode_count : t -> int

val find_mode : t -> string -> int option
(** Index of the mode with the given name. *)

val largest_mode : t -> Fpga.Resource.t
(** Component-wise maximum over modes — the area a dedicated
    one-module-per-region slot must provide. *)

val modes_total : t -> Fpga.Resource.t
(** Sum over modes — the module's footprint in a fully static build. *)

val pp : Format.formatter -> t -> unit
