type t = { name : string; choices : (int * int) list }

let make name choices =
  if name = "" then invalid_arg "Configuration.make: empty name";
  if choices = [] then invalid_arg "Configuration.make: empty configuration";
  List.iter
    (fun (m, k) ->
      if m < 0 || k < 0 then
        invalid_arg "Configuration.make: negative index")
    choices;
  let sorted = List.sort (fun (a, _) (b, _) -> Int.compare a b) choices in
  let rec check = function
    | (a, _) :: ((b, _) :: _ as rest) ->
      if a = b then
        invalid_arg
          (Printf.sprintf
             "Configuration.make: module %d listed twice in %s" a name);
      check rest
    | [ _ ] | [] -> ()
  in
  check sorted;
  { name; choices = sorted }

let mode_of_module t m = List.assoc_opt m t.choices
let modules_used t = List.map fst t.choices
let cardinal t = List.length t.choices
let equal a b = a.name = b.name && a.choices = b.choices

let pp ppf t =
  Format.fprintf ppf "%s{%a}" t.name
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf (m, k) -> Format.fprintf ppf "%d.%d" m k))
    t.choices
