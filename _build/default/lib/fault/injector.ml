type kind =
  | Fetch_timeout
  | Corrupt_bitstream
  | Icap_crc_error
  | Seu_upset
  | Device_busy

let all_kinds =
  [ Fetch_timeout; Corrupt_bitstream; Icap_crc_error; Seu_upset; Device_busy ]

let kind_name = function
  | Fetch_timeout -> "fetch-timeout"
  | Corrupt_bitstream -> "corrupt-bitstream"
  | Icap_crc_error -> "icap-crc-error"
  | Seu_upset -> "seu-upset"
  | Device_busy -> "device-busy"

let kind_of_string s =
  List.find_opt (fun k -> kind_name k = s) all_kinds

type op = Fetch_op | Program_op

let applies kind op =
  match (kind, op) with
  | (Fetch_timeout | Corrupt_bitstream), Fetch_op -> true
  | (Icap_crc_error | Seu_upset | Device_busy), Program_op -> true
  | (Fetch_timeout | Corrupt_bitstream), Program_op -> false
  | (Icap_crc_error | Seu_upset | Device_busy), Fetch_op -> false

type burst = {
  start_probability : float;
  length : int;
}

type spec = {
  seed : int;
  rates : (kind * float) list;
  burst : burst option;
  schedule : (int * kind) list;
}

let disabled = { seed = 0; rates = []; burst = None; schedule = [] }

let uniform ?(seed = 0) ~rate () =
  if rate < 0. || rate > 1. then
    invalid_arg "Injector.uniform: rate outside [0, 1]";
  { seed;
    rates = List.map (fun k -> (k, rate)) all_kinds;
    burst = None;
    schedule = [] }

let validate spec =
  let bad_rate =
    List.find_opt (fun (_, r) -> r < 0. || r > 1. || Float.is_nan r) spec.rates
  in
  match bad_rate with
  | Some (k, r) ->
    Error (Printf.sprintf "rate %g for %s outside [0, 1]" r (kind_name k))
  | None -> (
    match spec.burst with
    | Some b when b.start_probability < 0. || b.start_probability > 1. ->
      Error "burst start probability outside [0, 1]"
    | Some b when b.length < 1 -> Error "burst length must be >= 1"
    | Some _ | None ->
      if List.exists (fun (i, _) -> i < 0) spec.schedule then
        Error "scheduled fault at a negative operation index"
      else Ok ())

let active spec =
  List.exists (fun (_, r) -> r > 0.) spec.rates || spec.schedule <> []

type t = {
  spec : spec;
  rng : Synth.Rng.t;
  jitter_rng : Synth.Rng.t;
      (* Separate stream so backoff jitter never perturbs the fault
         sequence: the same spec faults the same operations whether or
         not the recovery loop draws jitter. *)
  mutable op_index : int;
  mutable injected : int;
  mutable burst_kind : kind option;  (* Kind repeating in the open burst. *)
  mutable burst_remaining : int;
}

let start spec =
  (match validate spec with
   | Ok () -> ()
   | Error message -> invalid_arg ("Injector.start: " ^ message));
  { spec;
    rng = Synth.Rng.make spec.seed;
    jitter_rng = Synth.Rng.make (spec.seed lxor 0x5bd1e995);
    op_index = 0;
    injected = 0;
    burst_kind = None;
    burst_remaining = 0 }

let jitter t = Synth.Rng.float t.jitter_rng

let spec t = t.spec
let operations t = t.op_index
let faults_injected t = t.injected

(* One probabilistic decision per applicable kind, in a fixed kind order,
   so the PRNG stream depends only on the operation sequence. *)
let probabilistic t op =
  List.fold_left
    (fun fired kind ->
      if not (applies kind op) then fired
      else begin
        let rate =
          match List.assoc_opt kind t.spec.rates with
          | Some r -> r
          | None -> 0.
        in
        (* Always consume a draw, hit or miss, to keep the stream
           aligned across rate settings with the same seed. *)
        let u = Synth.Rng.float t.rng in
        match fired with
        | Some _ -> fired
        | None -> if rate > 0. && u < rate then Some kind else None
      end)
    None all_kinds

let maybe_open_burst t kind =
  match t.spec.burst with
  | None -> ()
  | Some b ->
    if b.length > 1 && Synth.Rng.float t.rng < b.start_probability then begin
      t.burst_kind <- Some kind;
      t.burst_remaining <- b.length - 1
    end

let draw t op =
  let index = t.op_index in
  t.op_index <- index + 1;
  let scheduled =
    List.find_opt
      (fun (i, kind) -> i = index && applies kind op)
      t.spec.schedule
  in
  let fault =
    match scheduled with
    | Some (_, kind) -> Some kind
    | None -> (
      match t.burst_kind with
      | Some kind when t.burst_remaining > 0 && applies kind op ->
        t.burst_remaining <- t.burst_remaining - 1;
        if t.burst_remaining = 0 then t.burst_kind <- None;
        Some kind
      | Some _ | None ->
        let fired = probabilistic t op in
        (match fired with
         | Some kind -> maybe_open_burst t kind
         | None -> ());
        fired)
  in
  (match fault with
   | Some _ -> t.injected <- t.injected + 1
   | None -> ());
  fault
