(** Deterministic fault injection for the reconfiguration runtime.

    Real partial-reconfiguration deployments lose far more time to
    {e failed} reconfigurations — fetch timeouts, corrupted bitstreams,
    ICAP CRC errors — than to raw frame counts. This module models those
    failures as a typed fault stream the runtime simulator draws from:
    every reconfiguration operation (an external bitstream fetch, an
    ICAP programming pass) asks the injector whether it faults, and the
    injector answers from a seeded deterministic PRNG so any failure
    scenario replays bit-for-bit.

    Three trigger mechanisms compose:

    - {b rates}: an independent per-kind probability per operation;
    - {b bursts}: once a probabilistic fault fires, with probability
      [burst.start_probability] the same kind keeps firing for the next
      [burst.length - 1] applicable operations (modelling a brown-out or
      a noisy supply rather than independent glitches);
    - {b schedule}: exact (operation index, kind) pairs that fire
      unconditionally — the tool for reproducible tests and golden
      reliability reports.

    The injector is deterministic in its draw sequence: a fixed
    {!spec} replayed against the same operation sequence produces the
    same fault stream on every run and every machine. *)

type kind =
  | Fetch_timeout  (** External memory did not deliver the bitstream. *)
  | Corrupt_bitstream  (** Fetched image fails its CRC; must re-fetch. *)
  | Icap_crc_error
      (** Programming aborted mid-stream; region content is garbage. *)
  | Seu_upset
      (** Single-event upset detected right after programming (readback
          scrubbing); region must be reprogrammed. *)
  | Device_busy  (** Configuration port busy; back off and retry. *)

val all_kinds : kind list
(** In declaration order. *)

val kind_name : kind -> string
val kind_of_string : string -> kind option

type op = Fetch_op | Program_op
(** The two fallible operation classes. {!Fetch_timeout} and
    {!Corrupt_bitstream} apply to [Fetch_op]; the other three to
    [Program_op]. *)

val applies : kind -> op -> bool

type burst = {
  start_probability : float;  (** Chance a fired fault opens a burst. *)
  length : int;  (** Total faults in the burst, the trigger included. *)
}

type spec = {
  seed : int;
  rates : (kind * float) list;
      (** Per-operation probability of each kind, each in [0, 1].
          Missing kinds never fire probabilistically. *)
  burst : burst option;
  schedule : (int * kind) list;
      (** Unconditional faults by zero-based operation index. Fetch and
          programming operations share one counter, in draw order. *)
}

val disabled : spec
(** Never fires: no rates, no burst, no schedule. *)

val uniform : ?seed:int -> rate:float -> unit -> spec
(** Every kind fires independently with probability [rate] on the
    operations it applies to. [seed] defaults to 0.
    @raise Invalid_argument when [rate] is outside [0, 1]. *)

val validate : spec -> (unit, string) result
(** Checks rates and burst parameters are in range and the schedule
    indices are non-negative. *)

val active : spec -> bool
(** [true] when the spec can ever fire (some positive rate or a
    non-empty schedule). *)

type t
(** A live injector: spec plus PRNG, burst and operation-counter state.
    Create one per simulation run with {!start}. *)

val start : spec -> t
(** @raise Invalid_argument when {!validate} rejects the spec. *)

val spec : t -> spec
val operations : t -> int
(** Operations drawn so far. *)

val faults_injected : t -> int

val draw : t -> op -> kind option
(** Ask whether the next operation of class [op] faults. Consumes one
    operation index; the PRNG advances by one draw per applicable kind,
    so the stream is reproducible for a fixed operation sequence. *)

val jitter : t -> float
(** Uniform in [0, 1) from a dedicated stream seeded off [spec.seed],
    for backoff jitter: drawing jitter never perturbs the fault
    sequence. *)
