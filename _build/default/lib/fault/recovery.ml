type policy = Retry_then_fail | Fallback_safe_config | Skip_transition | Abort

let all_policies = [ Retry_then_fail; Fallback_safe_config; Skip_transition; Abort ]

let policy_name = function
  | Retry_then_fail -> "retry"
  | Fallback_safe_config -> "fallback"
  | Skip_transition -> "skip"
  | Abort -> "abort"

let policy_of_string s =
  List.find_opt (fun p -> policy_name p = s) all_policies

type retry = {
  max_attempts : int;
  base_backoff_s : float;
  backoff_multiplier : float;
  max_backoff_s : float;
  jitter : float;
  transition_budget_s : float option;
}

let default_retry =
  { max_attempts = 4;
    base_backoff_s = 100e-6;
    backoff_multiplier = 2.;
    max_backoff_s = 10e-3;
    jitter = 0.2;
    transition_budget_s = None }

let validate_retry r =
  if r.max_attempts < 1 then Error "max_attempts must be >= 1"
  else if r.base_backoff_s < 0. then Error "base_backoff_s must be >= 0"
  else if r.backoff_multiplier < 1. then Error "backoff_multiplier must be >= 1"
  else if r.max_backoff_s < 0. then Error "max_backoff_s must be >= 0"
  else if r.jitter < 0. || r.jitter > 1. then Error "jitter must be in [0, 1]"
  else
    match r.transition_budget_s with
    | Some b when b <= 0. -> Error "transition_budget_s must be positive"
    | Some _ | None -> Ok ()

let backoff_seconds r ~attempt ~unit_jitter =
  if attempt < 1 then invalid_arg "Recovery.backoff_seconds: attempt < 1";
  if unit_jitter < 0. || unit_jitter > 1. then
    invalid_arg "Recovery.backoff_seconds: unit_jitter outside [0, 1]";
  let raw =
    r.base_backoff_s *. (r.backoff_multiplier ** float_of_int (attempt - 1))
  in
  let capped = Float.min raw r.max_backoff_s in
  capped *. (1. +. (r.jitter *. unit_jitter))
