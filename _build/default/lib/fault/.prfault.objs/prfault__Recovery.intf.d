lib/fault/recovery.mli:
