lib/fault/recovery.ml: Float List
