lib/fault/injector.ml: Float List Printf Synth
