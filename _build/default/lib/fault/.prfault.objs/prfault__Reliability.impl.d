lib/fault/reliability.ml: Array Buffer Injector List Printf
