lib/fault/reliability.mli: Injector
