lib/fault/prfault.ml: Injector Recovery Reliability
