lib/fault/injector.mli:
