(** Fault injection and recovery modelling for the reconfiguration
    runtime. See {!Injector} for the typed fault model and deterministic
    seeded injector, {!Recovery} for degradation policies and
    retry/backoff parameters, and {!Reliability} for the report the
    resilient runtime produces.

    The resilient simulation loop itself lives in [Runtime.Resilient]
    (the runtime layer depends on this library, not the reverse). *)

module Injector = Injector
module Recovery = Recovery
module Reliability = Reliability
