(** Reliability accounting for a resilient reconfiguration run: what
    faulted, what was recovered, what was dropped, and how much latency
    the recovery machinery added on top of the fault-free schedule.

    The resilient runtime feeds a mutable accumulator ({!t}) as it
    executes; {!snapshot} freezes it into an immutable {!summary} that
    renders ({!render}) alongside the existing runtime statistics. Two
    runs with the same fault spec and workload produce identical
    summaries — that determinism is what makes golden-report tests
    possible. *)

type t
(** Mutable accumulator. *)

val create : regions:int -> t

(** {1 Recording} (called by the resilient runtime) *)

val record_fault : t -> Injector.kind -> region:int -> unit
val record_retry : t -> unit
val record_backoff : t -> float -> unit
val record_wasted : t -> float -> unit
(** Fetch/programming seconds burnt by failed attempts. *)

val record_recovered : t -> unit
(** A region load that succeeded after at least one fault. *)

val record_failed_load : t -> unit
(** A region load abandoned with its retries exhausted. *)

val record_dropped_transition : t -> unit
val record_fallback : t -> unit
val record_budget_exhausted : t -> unit
val mark_incomplete : t -> unit

(** {1 Summary} *)

type summary = {
  faults_by_kind : (Injector.kind * int) list;
      (** Every kind, declaration order, zero counts included. *)
  total_faults : int;
  retries : int;
  recovered_loads : int;
  failed_loads : int;
  dropped_transitions : int;
  fallbacks : int;
  budget_exhausted : int;
      (** Region loads cut short by the per-transition time budget. *)
  backoff_seconds : float;
  wasted_seconds : float;
  added_seconds : float;  (** [backoff + wasted]: latency over fault-free. *)
  mttr_seconds : float;
      (** Mean time to repair: added seconds per recovered load; 0 when
          nothing was recovered. *)
  region_faults : int array;  (** Faults observed per region. *)
  completed : bool;  (** [false] when the run aborted. *)
}

val snapshot : t -> summary

val equal : summary -> summary -> bool
(** Structural equality (exact float comparison) — two runs of the same
    seeded scenario must be indistinguishable. *)

val render : summary -> string
(** Multi-line human-readable report. *)
