(** Partial-bitstream model — the artefact of the paper's tool-flow step 7
    ("a complete configuration bitstream and partial bitstreams for each
    region under different configurations are generated").

    A bitstream is a sync word, a small header (frame address, frame
    count, identification), a frame payload and a CRC-32 trailer. Payload
    contents are synthesised deterministically from the identification —
    real mask data needs the vendor backend — but all {e sizes} are exact:
    payload bytes are [frames * 164] (UG191), which is what reconfiguration
    time and storage budgeting depend on. *)

type header = {
  design : string;  (** ≤ 64 bytes. *)
  variant : string;  (** Cluster/variant label, ≤ 64 bytes. *)
  region : int;  (** Target region id (0xFFFF for a full bitstream). *)
  far : int;  (** Frame address register value of the region origin. *)
  frames : int;
}

type t = private { header : header; payload : bytes; crc : int32 }

val sync_word : int32
(** 0xAA995566, as on real Xilinx bitstreams. *)

val far_of_origin : row:int -> major:int -> int
(** Simplified FAR encoding: configuration row in bits 15+, major column
    in bits 7+. @raise Invalid_argument on negative fields. *)

val generate : header -> t
(** Deterministic: equal headers give byte-identical bitstreams.
    @raise Invalid_argument on negative frames/region/far or oversized
    strings. *)

val serialise : t -> bytes
val size_bytes : t -> int
(** [Bytes.length (serialise t)]. *)

val payload_bytes : t -> int
(** [frames * 164]. *)

val parse : bytes -> (t, string) result
(** Validates the sync word, header sanity, length and CRC; corruption
    anywhere is detected (CRC covers header and payload). *)
