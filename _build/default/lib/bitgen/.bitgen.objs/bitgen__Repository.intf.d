lib/bitgen/repository.mli: Bitstream Floorplan Fpga Prcore Prtelemetry
