lib/bitgen/crc32.mli:
