lib/bitgen/bitstream.mli:
