lib/bitgen/repository.ml: Array Bitstream Buffer Cluster Floorplan Fpga List Prcore Prdesign Printf Prtelemetry
