lib/bitgen/bitstream.ml: Buffer Bytes Char Crc32 Fpga Int32 Printf String
