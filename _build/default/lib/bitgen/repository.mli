(** The bitstream repository of a partitioned design: one partial
    bitstream per (region, hosted cluster) plus the initial full
    bitstream — what the configuration-management software keeps in
    external memory and streams through the ICAP at mode switches. *)

type entry = {
  region : int;
  partition : int;  (** Index into the scheme's partition array. *)
  label : string;  (** Cluster label, e.g. ["{A3, B2}"]. *)
  bitstream : Bitstream.t;
}

type t = private {
  scheme : Prcore.Scheme.t;
  device : Fpga.Device.t;
  full : Bitstream.t;  (** Whole-device initial bitstream. *)
  entries : entry list;  (** Region-major, priority order within. *)
}

val build :
  ?placement:Floorplan.Placer.rect option array ->
  ?telemetry:Prtelemetry.t ->
  device:Fpga.Device.t ->
  Prcore.Scheme.t ->
  t
(** Partial bitstreams take their region's tile-quantised frame count;
    frame addresses come from [placement] (the floorplanner's rectangles,
    regions first) when given, otherwise from a region-index placeholder.
    The full bitstream covers the whole device.

    [telemetry] (default {!Prtelemetry.null}, free): a ["bitgen.build"]
    span, ["bitgen.bitstreams"] / ["bitgen.frames"] counters, and a
    ["bitgen.entry"] trace event per generated bitstream (when
    tracing). *)

val find : t -> region:int -> partition:int -> entry option

val total_bytes : t -> int
(** Storage for all partial bitstreams plus the full one. *)

val partial_bytes : t -> int
(** Storage for the partial bitstreams only. *)

val load_seconds : ?icap:Fpga.Icap.t -> entry -> float
(** ICAP time to load one partial bitstream. *)

val render : t -> string
(** Human-readable inventory table. *)
