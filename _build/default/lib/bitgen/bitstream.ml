type header = {
  design : string;
  variant : string;
  region : int;
  far : int;
  frames : int;
}

type t = { header : header; payload : bytes; crc : int32 }

let sync_word = 0xAA995566l

let far_of_origin ~row ~major =
  if row < 0 || major < 0 then
    invalid_arg "Bitstream.far_of_origin: negative field";
  (row lsl 15) lor (major lsl 7)

let max_string = 64

(* A tiny deterministic byte stream seeded from the header text, standing
   in for real mask data. *)
let fill_payload header payload =
  let seed =
    Int32.to_int (Crc32.string_digest (header.design ^ "/" ^ header.variant))
    land 0xFFFFFF
  in
  let state = ref (seed lor 1) in
  for i = 0 to Bytes.length payload - 1 do
    state := (!state * 1103515245) + 12345;
    Bytes.set payload i (Char.chr ((!state lsr 16) land 0xFF))
  done

let check_header h =
  if h.frames < 0 then invalid_arg "Bitstream: negative frame count";
  if h.region < 0 || h.region > 0xFFFF then
    invalid_arg "Bitstream: region id out of range";
  if h.far < 0 then invalid_arg "Bitstream: negative frame address";
  if String.length h.design > max_string then
    invalid_arg "Bitstream: design name too long";
  if String.length h.variant > max_string then
    invalid_arg "Bitstream: variant name too long"

(* Header encoding: sync(4) | far(4) | frames(4) | region(2) |
   len(design)(1) design | len(variant)(1) variant | payload | crc(4). *)
let header_bytes h =
  let buf = Buffer.create 64 in
  let word32 v =
    for shift = 24 downto 0 do
      if shift mod 8 = 0 then
        Buffer.add_char buf
          (Char.chr (Int32.to_int (Int32.shift_right_logical v shift) land 0xFF))
    done
  in
  word32 sync_word;
  word32 (Int32.of_int h.far);
  word32 (Int32.of_int h.frames);
  Buffer.add_char buf (Char.chr (h.region lsr 8));
  Buffer.add_char buf (Char.chr (h.region land 0xFF));
  Buffer.add_char buf (Char.chr (String.length h.design));
  Buffer.add_string buf h.design;
  Buffer.add_char buf (Char.chr (String.length h.variant));
  Buffer.add_string buf h.variant;
  Buffer.to_bytes buf

let payload_bytes t = t.header.frames * Fpga.Frame.bytes_per_frame

let generate header =
  check_header header;
  let payload = Bytes.create (header.frames * Fpga.Frame.bytes_per_frame) in
  fill_payload header payload;
  let crc =
    let head = header_bytes header in
    Crc32.finalise
      (Crc32.update
         (Crc32.update Crc32.initial head ~pos:0 ~len:(Bytes.length head))
         payload ~pos:0 ~len:(Bytes.length payload))
  in
  { header; payload; crc }

let serialise t =
  let head = header_bytes t.header in
  let total = Bytes.length head + Bytes.length t.payload + 4 in
  let out = Bytes.create total in
  Bytes.blit head 0 out 0 (Bytes.length head);
  Bytes.blit t.payload 0 out (Bytes.length head) (Bytes.length t.payload);
  let crc_pos = total - 4 in
  for shift = 0 to 3 do
    Bytes.set out
      (crc_pos + shift)
      (Char.chr
         (Int32.to_int
            (Int32.shift_right_logical t.crc ((3 - shift) * 8))
          land 0xFF))
  done;
  out

let size_bytes t = Bytes.length (serialise t)

let read_u32 buffer pos =
  let byte i = Int32.of_int (Char.code (Bytes.get buffer (pos + i))) in
  Int32.logor
    (Int32.shift_left (byte 0) 24)
    (Int32.logor
       (Int32.shift_left (byte 1) 16)
       (Int32.logor (Int32.shift_left (byte 2) 8) (byte 3)))

let parse buffer =
  let len = Bytes.length buffer in
  if len < 20 then Error "too short for a bitstream"
  else if read_u32 buffer 0 <> sync_word then Error "bad sync word"
  else begin
    let far = Int32.to_int (read_u32 buffer 4) in
    let frames = Int32.to_int (read_u32 buffer 8) in
    if frames < 0 || far < 0 then Error "corrupt header fields"
    else begin
      let region =
        (Char.code (Bytes.get buffer 12) lsl 8) lor Char.code (Bytes.get buffer 13)
      in
      let pos = ref 14 in
      let read_string () =
        if !pos >= len then Error "truncated string"
        else begin
          let n = Char.code (Bytes.get buffer !pos) in
          if !pos + 1 + n > len then Error "truncated string"
          else begin
            let s = Bytes.sub_string buffer (!pos + 1) n in
            pos := !pos + 1 + n;
            Ok s
          end
        end
      in
      match read_string () with
      | Error e -> Error e
      | Ok design ->
        (match read_string () with
         | Error e -> Error e
         | Ok variant ->
           let payload_len = frames * Fpga.Frame.bytes_per_frame in
           let expected = !pos + payload_len + 4 in
           if len <> expected then
             Error
               (Printf.sprintf "length mismatch: %d bytes, expected %d" len
                  expected)
           else begin
             let stored_crc = read_u32 buffer (len - 4) in
             let computed =
               Crc32.finalise
                 (Crc32.update Crc32.initial buffer ~pos:0 ~len:(len - 4))
             in
             if stored_crc <> computed then Error "CRC mismatch"
             else begin
               let header = { design; variant; region; far; frames } in
               let payload = Bytes.sub buffer !pos payload_len in
               Ok { header; payload; crc = stored_crc }
             end
           end)
    end
  end
