module Design_library = Prdesign.Design_library
module Engine = Prcore.Engine
module Resilient = Runtime.Resilient

type row = {
  scheme_label : string;
  rate : float;
  operations : int;
  faults : int;
  recovered : int;
  dropped : int;
  fallbacks : int;
  total_ms : float;
  added_ms : float;
  mttr_ms : float;
  completed : bool;
}

let case_study_schemes () =
  let design = Design_library.video_receiver in
  let optimised =
    match
      Engine.solve ~target:(Engine.Budget Design_library.case_study_budget)
        design
    with
    | Ok o -> o.Engine.scheme
    | Error message -> failwith ("fault sweep solve failed: " ^ message)
  in
  [ ("paper-optimised", optimised);
    ( "single region",
      (Baselines.Schemes.single_region design).Baselines.Schemes.scheme );
    ( "one module/region",
      (Baselines.Schemes.one_module_per_region design).Baselines.Schemes.scheme
    ) ]

let walk ~seed ~steps design =
  let rng = Synth.Rng.make seed in
  Runtime.Manager.random_walk
    ~rand:(fun n -> Synth.Rng.int rng n)
    ~configs:(Prdesign.Design.configuration_count design)
    ~steps ~initial:0

let sweep ?(steps = 2000) ?(seed = 17) ?(rates = [ 0.; 0.002; 0.01; 0.05 ])
    () =
  let design = Design_library.video_receiver in
  let sequence = walk ~seed ~steps design in
  let schemes = case_study_schemes () in
  List.concat_map
    (fun rate ->
      List.map
        (fun (scheme_label, scheme) ->
          let fault =
            { Resilient.default_config with
              spec = Prfault.Injector.uniform ~seed ~rate ();
              policy = Prfault.Recovery.Fallback_safe_config }
          in
          match
            Resilient.simulate ~memory:Runtime.Fetch.flash ~fault scheme
              ~initial:0 ~sequence
          with
          | Error f ->
            failwith
              (Printf.sprintf "fault sweep: %s under fallback: %s"
                 scheme_label
                 (Resilient.render_failure f))
          | Ok o ->
            let r = o.Resilient.reliability in
            { scheme_label;
              rate;
              operations = o.Resilient.operations;
              faults = r.Prfault.Reliability.total_faults;
              recovered = r.Prfault.Reliability.recovered_loads;
              dropped = r.Prfault.Reliability.dropped_transitions;
              fallbacks = r.Prfault.Reliability.fallbacks;
              total_ms =
                1e3 *. o.Resilient.stats.Runtime.Manager.total_seconds;
              added_ms = 1e3 *. r.Prfault.Reliability.added_seconds;
              mttr_ms = 1e3 *. r.Prfault.Reliability.mttr_seconds;
              completed = r.Prfault.Reliability.completed })
        schemes)
    rates

type policy_row = {
  policy_label : string;
  p_faults : int;
  p_recovered : int;
  p_dropped : int;
  p_fallbacks : int;
  p_added_ms : float;
  p_outcome : string;
}

let policies ?(steps = 2000) ?(seed = 17) ?(rate = 0.05) () =
  let design = Design_library.video_receiver in
  let sequence = walk ~seed ~steps design in
  let scheme = List.assoc "paper-optimised" (case_study_schemes ()) in
  List.map
    (fun policy ->
      let fault =
        { Resilient.default_config with
          spec = Prfault.Injector.uniform ~seed ~rate ();
          policy }
      in
      let result =
        Resilient.simulate ~memory:Runtime.Fetch.flash ~fault scheme
          ~initial:0 ~sequence
      in
      let reliability, outcome =
        match result with
        | Ok o -> (o.Resilient.reliability, "completed")
        | Error f -> (f.Resilient.reliability, Resilient.render_failure f)
      in
      { policy_label = Prfault.Recovery.policy_name policy;
        p_faults = reliability.Prfault.Reliability.total_faults;
        p_recovered = reliability.Prfault.Reliability.recovered_loads;
        p_dropped = reliability.Prfault.Reliability.dropped_transitions;
        p_fallbacks = reliability.Prfault.Reliability.fallbacks;
        p_added_ms = 1e3 *. reliability.Prfault.Reliability.added_seconds;
        p_outcome = outcome })
    Prfault.Recovery.all_policies

let render_sweep rows =
  "Fault-rate sweep: resilient runtime over the case-study walk \
   (fallback policy, flash fetch)\n"
  ^ Report.Table.render
      ~headers:
        [ "Scheme"; "Rate"; "Ops"; "Faults"; "Recov."; "Dropped"; "Fallb.";
          "Base ms"; "Added ms"; "MTTR ms" ]
      (List.map
         (fun r ->
           [ r.scheme_label;
             Report.Table.fixed 3 r.rate;
             string_of_int r.operations;
             string_of_int r.faults;
             string_of_int r.recovered;
             string_of_int r.dropped;
             string_of_int r.fallbacks;
             Report.Table.fixed 1 r.total_ms;
             Report.Table.fixed 1 r.added_ms;
             Report.Table.fixed 2 r.mttr_ms ])
         rows)

let render_policies rows =
  "Recovery policies under the identical fault scenario (optimised \
   scheme)\n"
  ^ Report.Table.render
      ~headers:
        [ "Policy"; "Faults"; "Recov."; "Dropped"; "Fallb."; "Added ms";
          "Outcome" ]
      (List.map
         (fun r ->
           [ r.policy_label;
             string_of_int r.p_faults;
             string_of_int r.p_recovered;
             string_of_int r.p_dropped;
             string_of_int r.p_fallbacks;
             Report.Table.fixed 1 r.p_added_ms;
             r.p_outcome ])
         rows)
