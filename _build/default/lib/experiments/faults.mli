(** Fault-injection sweep: how the paper-optimised partitioning and the
    reference schemes degrade as the reconfiguration path becomes
    unreliable.

    The case-study design replays one fixed seeded adaptation walk per
    scheme under {!Runtime.Resilient} at increasing per-operation fault
    rates. Because the optimised scheme moves fewer frames per
    transition, it exposes fewer fallible fetch/program operations —
    partitioning quality compounds into reliability, not just latency.

    A second table fixes the fault rate and varies the
    {!Prfault.Recovery.policy}, demonstrating that degradation policies
    change survivability: [Fallback_safe_config] completes runs that
    [Abort] cannot. *)

type row = {
  scheme_label : string;
  rate : float;  (** Per-operation, per-kind fault probability. *)
  operations : int;  (** Fallible fetch/program operations exposed. *)
  faults : int;
  recovered : int;
  dropped : int;
  fallbacks : int;
  total_ms : float;  (** Logical reconfiguration time (fault-free part). *)
  added_ms : float;  (** Latency added by retries and backoff. *)
  mttr_ms : float;
  completed : bool;
}

val sweep : ?steps:int -> ?seed:int -> ?rates:float list -> unit -> row list
(** Paper-optimised vs single-region vs modular on the case-study
    design and budget, [Fallback_safe_config] policy, flash fetch path.
    Defaults: 2000 steps, seed 17, rates [[0.; 0.002; 0.01; 0.05]]. *)

type policy_row = {
  policy_label : string;
  p_faults : int;
  p_recovered : int;
  p_dropped : int;
  p_fallbacks : int;
  p_added_ms : float;
  p_outcome : string;  (** ["completed"] or the failure description. *)
}

val policies : ?steps:int -> ?seed:int -> ?rate:float -> unit -> policy_row list
(** All four recovery policies over the identical fault scenario on the
    optimised scheme. Defaults: 2000 steps, seed 17, rate 0.05 (high
    enough that some loads exhaust their retries, so the policies
    diverge). *)

val render_sweep : row list -> string
val render_policies : policy_row list -> string
