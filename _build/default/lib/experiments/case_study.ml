module Design = Prdesign.Design
module Design_library = Prdesign.Design_library
module Base_partition = Cluster.Base_partition
module Engine = Prcore.Engine
module Cost = Prcore.Cost
module Scheme = Prcore.Scheme
module Schemes = Baselines.Schemes

module Table1 = struct
  type t = {
    partitions : Base_partition.t list;
    singles : int;
    pairs : int;
    triples : int;
  }

  let run () =
    let partitions =
      Cluster.Agglomerative.run Design_library.running_example
    in
    let count n =
      List.length
        (List.filter (fun bp -> Base_partition.cardinal bp = n) partitions)
    in
    { partitions; singles = count 1; pairs = count 2; triples = count 3 }

  let render t =
    let design = Design_library.running_example in
    let rows =
      List.map
        (fun (bp : Base_partition.t) ->
          [ Base_partition.label design bp;
            string_of_int bp.freq;
            string_of_int bp.frames ])
        t.partitions
    in
    Report.Table.render
      ~headers:[ "Base Part'n"; "Freq wt"; "Frames" ]
      rows
    ^ Printf.sprintf "(%d singletons, %d pairs, %d triples)\n" t.singles
        t.pairs t.triples
end

module Table2 = struct
  let run () = Design_library.video_receiver

  let render (design : Design.t) =
    let rows =
      List.concat_map
        (fun (m : Prdesign.Pmodule.t) ->
          List.mapi
            (fun k (mode : Prdesign.Mode.t) ->
              let r = mode.resources in
              [ (if k = 0 then m.name else "");
                Printf.sprintf "%d. %s" (k + 1) mode.name;
                string_of_int r.Fpga.Resource.clb;
                string_of_int r.Fpga.Resource.bram;
                string_of_int r.Fpga.Resource.dsp ])
            (Array.to_list m.modes))
        (Array.to_list design.Design.modules)
    in
    Report.Table.render
      ~aligns:[ Left; Left; Right; Right; Right ]
      ~headers:[ "Module"; "Mode"; "Slices"; "BR"; "DSP" ]
      rows
end

let solve_case design =
  match
    Engine.solve ~target:(Engine.Budget Design_library.case_study_budget)
      design
  with
  | Ok outcome -> outcome
  | Error message -> failwith ("case study solve failed: " ^ message)

let scheme_row (l : Schemes.labelled) =
  let e = l.evaluation in
  [ l.label;
    string_of_int e.Cost.used.Fpga.Resource.clb;
    string_of_int e.Cost.used.Fpga.Resource.bram;
    string_of_int e.Cost.used.Fpga.Resource.dsp;
    string_of_int e.Cost.total_frames ]

module Table3_4 = struct
  type t = {
    outcome : Engine.outcome;
    static_ : Schemes.labelled;
    modular : Schemes.labelled;
    single : Schemes.labelled;
    improvement_vs_modular_pct : float;
  }

  let run () =
    let design = Design_library.video_receiver in
    let outcome = solve_case design in
    let modular = Schemes.one_module_per_region design in
    { outcome;
      static_ = Schemes.fully_static design;
      modular;
      single = Schemes.single_region design;
      improvement_vs_modular_pct =
        Schemes.percent_change
          ~proposed:outcome.Engine.evaluation.Cost.total_frames
          ~baseline:modular.evaluation.Cost.total_frames }

  let render_partitions t = Scheme.describe t.outcome.Engine.scheme

  let render_comparison t =
    let proposed =
      [ "Proposed";
        string_of_int t.outcome.Engine.evaluation.Cost.used.Fpga.Resource.clb;
        string_of_int t.outcome.Engine.evaluation.Cost.used.Fpga.Resource.bram;
        string_of_int t.outcome.Engine.evaluation.Cost.used.Fpga.Resource.dsp;
        string_of_int t.outcome.Engine.evaluation.Cost.total_frames ]
    in
    Report.Table.render
      ~headers:[ "Scheme"; "CLBs"; "BRAMs"; "DSPs"; "Total recon. time" ]
      [ scheme_row t.static_; scheme_row t.modular; proposed ]
    ^ Printf.sprintf "Proposed improves total time over 1 module/region by %.1f%%\n"
        t.improvement_vs_modular_pct
end

module Table5 = struct
  type t = {
    outcome : Engine.outcome;
    modular : Schemes.labelled;
    improvement_vs_modular_pct : float;
  }

  let run () =
    let design = Design_library.video_receiver_alt in
    let outcome = solve_case design in
    let modular = Schemes.one_module_per_region design in
    { outcome;
      modular;
      improvement_vs_modular_pct =
        Schemes.percent_change
          ~proposed:outcome.Engine.evaluation.Cost.total_frames
          ~baseline:modular.evaluation.Cost.total_frames }

  let render t =
    Scheme.describe t.outcome.Engine.scheme
    ^ Format.asprintf "%a@." Cost.pp_evaluation t.outcome.Engine.evaluation
    ^ Printf.sprintf
        "Proposed improves total time over 1 module/region by %.1f%% \
         (modular total %d frames)\n"
        t.improvement_vs_modular_pct
        t.modular.evaluation.Cost.total_frames
end
