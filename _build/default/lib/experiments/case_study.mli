(** The paper's §V case study (Tables I–V): the running example's base
    partitions and the wireless video receiver under both configuration
    sets. Each experiment returns structured data plus a rendered table so
    the bench harness prints and the test suite asserts on the same
    artefact. *)

(** Table I — base partitions of the running example. *)
module Table1 : sig
  type t = {
    partitions : Cluster.Base_partition.t list;  (** Priority order. *)
    singles : int;
    pairs : int;
    triples : int;
  }

  val run : unit -> t
  val render : t -> string
end

(** Table II — module resource utilisation of the video receiver. *)
module Table2 : sig
  val run : unit -> Prdesign.Design.t
  val render : Prdesign.Design.t -> string
end

(** Tables III/IV — partitioning of the 8-configuration receiver and the
    scheme comparison. *)
module Table3_4 : sig
  type t = {
    outcome : Prcore.Engine.outcome;
    static_ : Baselines.Schemes.labelled;
    modular : Baselines.Schemes.labelled;
    single : Baselines.Schemes.labelled;
    improvement_vs_modular_pct : float;
  }

  val run : unit -> t

  val render_partitions : t -> string
  (** Table III analogue. *)

  val render_comparison : t -> string
  (** Table IV analogue. *)
end

(** Table V — the modified 5-configuration set. *)
module Table5 : sig
  type t = {
    outcome : Prcore.Engine.outcome;
    modular : Baselines.Schemes.labelled;
    improvement_vs_modular_pct : float;
  }

  val run : unit -> t
  val render : t -> string
end
