module Design_library = Prdesign.Design_library
module Engine = Prcore.Engine
module Cost = Prcore.Cost
module Scheme = Prcore.Scheme

type variant_result = {
  label : string;
  total_frames : int;
  worst_frames : int;
  regions : int;
  statics : int;
  base_partitions : int;
}

let solve_with ~label ~options design =
  match
    Engine.solve ~options
      ~target:(Engine.Budget Design_library.case_study_budget) design
  with
  | Error message -> failwith ("ablation solve failed: " ^ message)
  | Ok o ->
    { label;
      total_frames = o.Engine.evaluation.Cost.total_frames;
      worst_frames = o.Engine.evaluation.Cost.worst_frames;
      regions = o.Engine.scheme.Scheme.region_count;
      statics = List.length (Scheme.static_members o.Engine.scheme);
      base_partitions = o.Engine.base_partitions }

let frequency_rule () =
  List.concat_map
    (fun (tag, design) ->
      [ solve_with ~label:(tag ^ " / support") ~options:Engine.default_options
          design;
        solve_with
          ~label:(tag ^ " / min-edge")
          ~options:
            { Engine.default_options with
              freq_rule = Cluster.Agglomerative.Min_edge }
          design ])
    [ ("receiver", Design_library.video_receiver);
      ("receiver-alt", Design_library.video_receiver_alt) ]

let static_promotion () =
  let no_promotion =
    { Engine.default_options with
      allocator = { Prcore.Allocator.default_options with promote_static = false } }
  in
  List.concat_map
    (fun (tag, design) ->
      [ solve_with ~label:(tag ^ " / promotion on")
          ~options:Engine.default_options design;
        solve_with ~label:(tag ^ " / promotion off") ~options:no_promotion
          design ])
    [ ("receiver", Design_library.video_receiver);
      ("receiver-alt", Design_library.video_receiver_alt) ]

let restart_budget () =
  List.map
    (fun restarts ->
      solve_with
        ~label:(Printf.sprintf "receiver / %d restarts" restarts)
        ~options:
          { Engine.default_options with
            allocator =
              { Prcore.Allocator.default_options with max_restarts = restarts } }
        Design_library.video_receiver)
    [ 0; 2; 8; 24 ]

type proxy_result = {
  design_name : string;
  pairwise_mean_frames : float;
  simulated_mean_frames : float;
}

let proxy_vs_simulation ?(steps = 4000) ?(seed = 7) () =
  List.map
    (fun (design, budget) ->
      let outcome =
        match Engine.solve ~target:(Engine.Budget budget) design with
        | Ok o -> o
        | Error message -> failwith ("proxy ablation: " ^ message)
      in
      let scheme = outcome.Engine.scheme in
      let configs = Prdesign.Design.configuration_count design in
      let pairs = configs * (configs - 1) / 2 in
      let pairwise_mean_frames =
        float_of_int outcome.Engine.evaluation.Cost.total_frames
        /. float_of_int (max 1 pairs)
      in
      let rng = Synth.Rng.make seed in
      let sequence =
        Runtime.Manager.random_walk
          ~rand:(fun n -> Synth.Rng.int rng n)
          ~configs ~steps ~initial:0
      in
      let stats = Runtime.Manager.simulate scheme ~initial:0 ~sequence in
      { design_name = design.Prdesign.Design.name;
        pairwise_mean_frames;
        simulated_mean_frames = stats.Runtime.Manager.mean_frames })
    [ (Design_library.video_receiver, Design_library.case_study_budget);
      (Design_library.video_receiver_alt, Design_library.case_study_budget);
      ( Design_library.running_example,
        Fpga.Resource.make ~bram:8 ~dsp:16 1200 ) ]

type gap_result = {
  name : string;
  candidate_size : int;
  greedy_total : int;
  anneal_total : int;
  exact_total : int;
  gap_pct : float;
  anneal_gap_pct : float;
  exact_optimal : bool;
}

let optimality_gap ?(count = 20) ?(seed = 11) () =
  (* Small designs keep the exact search tractable. *)
  let spec =
    { Synth.Generator.default_spec with modules = (2, 3); modes = (2, 3) }
  in
  let designs = Synth.Generator.batch ~spec ~seed ~count () in
  List.filter_map
    (fun (_, design) ->
      match Engine.solve ~target:Engine.Auto design with
      | Error _ -> None
      | Ok outcome ->
        let budget = outcome.Engine.budget in
        let partitions = Cluster.Agglomerative.run design in
        (match Prcore.Covering.cover design partitions with
         | None -> None
         | Some set ->
           let greedy = Prcore.Allocator.allocate ~budget design set in
           let anneal = Prcore.Anneal.allocate ~budget design set in
           let exact =
             Prcore.Exact.allocate ~max_states:500_000 ~budget design set
           in
           (match (greedy, exact.Prcore.Exact.scheme) with
            | Some g, Some e ->
              let greedy_total = (Cost.evaluate g).Cost.total_frames in
              let exact_total = (Cost.evaluate e).Cost.total_frames in
              let anneal_total =
                match anneal with
                | Some a -> (Cost.evaluate a).Cost.total_frames
                | None -> max_int
              in
              let gap proposed =
                if exact_total = 0 then if proposed = 0 then 0. else 100.
                else
                  100.
                  *. float_of_int (proposed - exact_total)
                  /. float_of_int exact_total
              in
              Some
                { name = design.Prdesign.Design.name;
                  candidate_size = List.length set;
                  greedy_total;
                  anneal_total;
                  exact_total;
                  gap_pct = gap greedy_total;
                  anneal_gap_pct = gap anneal_total;
                  exact_optimal = exact.Prcore.Exact.optimal }
            | _ -> None)))
    designs

type weighted_result = {
  design_name : string;
  uniform_objective_rate : float;
  weighted_objective_rate : float;
  improvement_pct : float;
}

(* A design where the weighted objective changes the decision: a big
   module whose mode rarely changes and a small module that oscillates.
   The budget has slack to promote only one of them to static; the
   uniform objective promotes the big one (larger unweighted saving), the
   weighted objective promotes the small hot one. *)
let hot_small_demo =
  let res = Fpga.Resource.make in
  let m name a b =
    Prdesign.Pmodule.make name
      [ Prdesign.Mode.make (name ^ "1") a; Prdesign.Mode.make (name ^ "2") b ]
  in
  Prdesign.Design.create_exn ~name:"hot-small-demo"
    ~modules:[ m "BIG" (res 2000 ~bram:8) (res 2000 ~bram:8);
               m "SML" (res 200 ~dsp:4) (res 200 ~dsp:4) ]
    ~configurations:
      [ Prdesign.Configuration.make "c1" [ (0, 0); (1, 0) ];
        Prdesign.Configuration.make "c2" [ (0, 1); (1, 0) ];
        Prdesign.Configuration.make "c3" [ (0, 0); (1, 1) ];
        Prdesign.Configuration.make "c4" [ (0, 1); (1, 1) ] ]
    ()

(* c1 <-> c3 oscillate (only SML changes); c2/c4 are rare excursions, so
   transitions changing BIG's mode are ~100x rarer than SML's. *)
let hot_small_chain =
  Runtime.Markov.make_exn
    [| [| 0.; 0.01; 0.98; 0.01 |];
       [| 0.98; 0.; 0.01; 0.01 |];
       [| 0.98; 0.01; 0.; 0.01 |];
       [| 0.98; 0.01; 0.01; 0. |] |]

(* Tight enough that exactly one merge is needed: the uniform objective
   merges the small module (cheapest unweighted conflicts), the weighted
   objective merges the big-but-cold one. *)
let hot_small_budget = Fpga.Resource.make ~bram:24 ~dsp:8 4300

let weighted_objective ?(seed = 3) () =
  List.map
    (fun (design, budget, fixed_chain) ->
      let configs = Prdesign.Design.configuration_count design in
      let rng = Synth.Rng.make seed in
      let chain =
        match fixed_chain with
        | Some chain -> chain
        | None ->
          Runtime.Markov.random
            ~rand:(fun () -> Synth.Rng.float rng)
            ~concentration:4. ~configs ()
      in
      let weights = Runtime.Markov.edge_rates chain in
      let solve objective =
        match
          Engine.solve
            ~options:{ Engine.default_options with objective }
            ~target:(Engine.Budget budget) design
        with
        | Ok o -> o.Engine.scheme
        | Error message -> failwith ("weighted ablation: " ^ message)
      in
      let rate scheme =
        let transition = Runtime.Transition.make scheme in
        Runtime.Markov.expected_frames_per_step chain
          ~frames:(Runtime.Transition.frames transition)
      in
      let uniform_objective_rate = rate (solve Engine.Total_frames) in
      let weighted_objective_rate = rate (solve (Engine.Weighted weights)) in
      { design_name = design.Prdesign.Design.name;
        uniform_objective_rate;
        weighted_objective_rate;
        improvement_pct =
          (if uniform_objective_rate = 0. then 0.
           else
             100.
             *. (uniform_objective_rate -. weighted_objective_rate)
             /. uniform_objective_rate) })
    [ (Design_library.video_receiver, Design_library.case_study_budget, None);
      ( Design_library.video_receiver_alt,
        Design_library.case_study_budget,
        None );
      ( Design_library.running_example,
        Fpga.Resource.make ~bram:16 ~dsp:32 1400,
        None );
      (hot_small_demo, hot_small_budget, Some hot_small_chain) ]

type cache_result = {
  label : string;
  capacity_frames : int;
  hit_rate_pct : float;
  icap_ms : float;
  fetch_ms : float;
  total_ms : float;
}

let fetch_cache ?(steps = 4000) ?(seed = 13) () =
  let design = Design_library.video_receiver in
  let outcome =
    match
      Engine.solve ~target:(Engine.Budget Design_library.case_study_budget)
        design
    with
    | Ok o -> o
    | Error message -> failwith ("cache ablation: " ^ message)
  in
  let scheme = outcome.Engine.scheme in
  let rng = Synth.Rng.make seed in
  let sequence =
    Runtime.Manager.random_walk
      ~rand:(fun n -> Synth.Rng.int rng n)
      ~configs:(Prdesign.Design.configuration_count design)
      ~steps ~initial:0
  in
  let total_partial_frames =
    List.fold_left
      (fun acc r -> acc + Prcore.Scheme.region_frames scheme r
                          * List.length (Prcore.Scheme.region_members scheme r))
      0
      (List.init scheme.Prcore.Scheme.region_count Fun.id)
  in
  let run label cache capacity =
    let report =
      Runtime.Fetch.simulate_walk ?cache ~memory:Runtime.Fetch.flash scheme
        ~initial:0 ~sequence
    in
    let accesses = report.Runtime.Fetch.hits + report.Runtime.Fetch.misses in
    { label;
      capacity_frames = capacity;
      hit_rate_pct =
        (if accesses = 0 then 0.
         else
           100. *. float_of_int report.Runtime.Fetch.hits
           /. float_of_int accesses);
      icap_ms = 1e3 *. report.Runtime.Fetch.icap_seconds;
      fetch_ms = 1e3 *. report.Runtime.Fetch.fetch_seconds;
      total_ms = 1e3 *. report.Runtime.Fetch.total_seconds }
  in
  let with_cache label policy fraction =
    let capacity = total_partial_frames * fraction / 100 in
    run
      (Printf.sprintf "%s @ %d%% of repertoire" label fraction)
      (Some (Runtime.Fetch.create_cache ~policy ~capacity_frames:capacity ()))
      capacity
  in
  run "no cache (flash every reload)" None 0
  :: List.concat_map
       (fun fraction ->
         [ with_cache "LRU" Runtime.Fetch.Lru fraction;
           with_cache "FIFO" Runtime.Fetch.Fifo fraction;
           with_cache "largest-out" Runtime.Fetch.Largest_out fraction ])
       [ 25; 50; 90 ]

let render_cache results =
  "Bitstream fetch path: on-chip cache policies vs flash-only\n"
  ^ Report.Table.render
      ~headers:
        [ "Variant"; "Capacity"; "Hit %"; "ICAP ms"; "Fetch ms"; "Total ms" ]
      (List.map
         (fun r ->
           [ r.label;
             string_of_int r.capacity_frames;
             Report.Table.fixed 1 r.hit_rate_pct;
             Report.Table.fixed 1 r.icap_ms;
             Report.Table.fixed 1 r.fetch_ms;
             Report.Table.fixed 1 r.total_ms ])
         results)

type arch_result = {
  arch : string;
  region_frames : int list;
  total_frames : int;
  total_bytes : int;
}

let cross_architecture () =
  let design = Design_library.video_receiver in
  let outcome =
    match
      Engine.solve ~target:(Engine.Budget Design_library.case_study_budget)
        design
    with
    | Ok o -> o
    | Error message -> failwith ("arch comparison: " ^ message)
  in
  let scheme = outcome.Engine.scheme in
  let evaluation = outcome.Engine.evaluation in
  List.map
    (fun arch ->
      let region_frames =
        List.init scheme.Prcore.Scheme.region_count (fun r ->
            Fpga.Arch.frames_of_resources arch
              (Prcore.Scheme.region_resources scheme r))
      in
      let total_frames =
        List.fold_left ( + ) 0
          (List.mapi
             (fun r f -> f * evaluation.Cost.region_conflicts.(r))
             region_frames)
      in
      { arch = arch.Fpga.Arch.name;
        region_frames;
        total_frames;
        total_bytes = total_frames * Fpga.Arch.bytes_per_frame arch })
    Fpga.Arch.all

let render_arch results =
  "Case-study partitioning re-costed per architecture generation\n"
  ^ Report.Table.render
      ~headers:[ "Architecture"; "Region frames"; "Total frames"; "Total MB" ]
      (List.map
         (fun r ->
           [ r.arch;
             String.concat "/" (List.map string_of_int r.region_frames);
             string_of_int r.total_frames;
             Report.Table.fixed 1 (float_of_int r.total_bytes /. 1e6) ])
         results)

let render_gap results =
  "Greedy and simulated annealing vs exact branch-and-bound (first \
   candidate set)\n"
  ^ Report.Table.render
      ~headers:
        [ "Design"; "Cand."; "Greedy"; "Anneal"; "Exact"; "Greedy gap %";
          "Anneal gap %" ]
      (List.map
         (fun (r : gap_result) ->
           [ r.name;
             string_of_int r.candidate_size;
             string_of_int r.greedy_total;
             (if r.anneal_total = max_int then "-"
              else string_of_int r.anneal_total);
             string_of_int r.exact_total;
             Report.Table.fixed 2 r.gap_pct;
             Report.Table.fixed 2 r.anneal_gap_pct ])
         results)
  ^
  let gaps = List.map (fun r -> r.gap_pct) results in
  let anneal_gaps = List.map (fun r -> r.anneal_gap_pct) results in
  if gaps = [] then ""
  else
    Printf.sprintf
      "greedy: mean gap %.2f%%, max %.2f%%; annealing: mean gap %.2f%%, max \
       %.2f%% over %d designs\n"
      (Report.Stats.mean gaps) (Report.Stats.maximum gaps)
      (Report.Stats.mean anneal_gaps)
      (Report.Stats.maximum anneal_gaps)
      (List.length gaps)

let render_weighted results =
  "Optimising for known transition statistics (expected frames/step)\n"
  ^ Report.Table.render
      ~headers:[ "Design"; "Uniform obj."; "Weighted obj."; "Improvement %" ]
      (List.map
         (fun (r : weighted_result) ->
           [ r.design_name;
             Report.Table.fixed 1 r.uniform_objective_rate;
             Report.Table.fixed 1 r.weighted_objective_rate;
             Report.Table.fixed 2 r.improvement_pct ])
         results)

let render_variants ~header results =
  header ^ "\n"
  ^ Report.Table.render
      ~headers:
        [ "Variant"; "Total"; "Worst"; "Regions"; "Static"; "Base part'ns" ]
      (List.map
         (fun (r : variant_result) ->
           [ r.label;
             string_of_int r.total_frames;
             string_of_int r.worst_frames;
             string_of_int r.regions;
             string_of_int r.statics;
             string_of_int r.base_partitions ])
         results)

let render_proxy results =
  "Pairwise metric vs stateful runtime simulation (mean frames/transition)\n"
  ^ Report.Table.render
      ~headers:[ "Design"; "Pairwise proxy"; "Simulated walk" ]
      (List.map
         (fun (r : proxy_result) ->
           [ r.design_name;
             Report.Table.fixed 1 r.pairwise_mean_frames;
             Report.Table.fixed 1 r.simulated_mean_frames ])
         results)
