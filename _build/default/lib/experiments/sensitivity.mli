(** Sensitivity of the headline results to the synthetic-workload
    parameters the paper does not publish (see DESIGN.md's substitution
    notes): module absence probability, design size and configuration
    count. Each study re-runs a reduced sweep under a varied generator
    recipe and reports how the proposed/modular comparison moves. *)

type row = {
  label : string;
  designs : int;
  beats_modular_total_pct : float;
  beats_modular_worst_pct : float;
  escalated_pct : float;
  mean_improvement_pct : float;
      (** Mean percentage improvement of proposed over modular total
          time. *)
  mean_statics : float;  (** Mean clusters promoted to static. *)
}

val absence_probability : ?count:int -> ?seed:int -> unit -> row list
(** Vary the chance a module is absent from a configuration
    (0, 0.15, 0.35): absence creates the static-promotion and
    region-sharing opportunities the algorithm exploits. *)

val design_size : ?count:int -> ?seed:int -> unit -> row list
(** Small (2–3 modules) vs paper-sized (2–6) vs large (5–6) designs. *)

val configuration_count : ?count:int -> ?seed:int -> unit -> row list
(** Few extra random configurations vs many: more configurations
    constrain compatibility and shrink the win. *)

val render : title:string -> row list -> string
