type row = {
  label : string;
  designs : int;
  beats_modular_total_pct : float;
  beats_modular_worst_pct : float;
  escalated_pct : float;
  mean_improvement_pct : float;
  mean_statics : float;
}

let study ~label ~count ~seed ~spec =
  let rows = Sweep.run ~count ~seed ~spec () in
  let pct pred = 100. *. Report.Stats.fraction pred rows in
  let improvements =
    List.map
      (fun (r : Sweep.row) ->
        Baselines.Schemes.percent_change ~proposed:r.proposed_total
          ~baseline:r.modular_total)
      rows
  in
  { label;
    designs = List.length rows;
    beats_modular_total_pct =
      pct (fun (r : Sweep.row) -> r.proposed_total < r.modular_total);
    beats_modular_worst_pct =
      pct (fun (r : Sweep.row) -> r.proposed_worst < r.modular_worst);
    escalated_pct = pct (fun (r : Sweep.row) -> r.escalations > 0);
    mean_improvement_pct =
      (if improvements = [] then 0. else Report.Stats.mean improvements);
    mean_statics =
      (if rows = [] then 0.
       else
         Report.Stats.mean
           (List.map (fun (r : Sweep.row) -> float_of_int r.statics) rows)) }

let absence_probability ?(count = 120) ?(seed = 2013) () =
  List.map
    (fun p ->
      study
        ~label:(Printf.sprintf "absence probability %.2f" p)
        ~count ~seed
        ~spec:{ Synth.Generator.default_spec with absence_probability = p })
    [ 0.0; 0.15; 0.35 ]

let design_size ?(count = 120) ?(seed = 2013) () =
  List.map
    (fun (label, modules) ->
      study ~label ~count ~seed
        ~spec:{ Synth.Generator.default_spec with modules })
    [ ("2-3 modules", (2, 3)); ("2-6 modules (paper)", (2, 6));
      ("5-6 modules", (5, 6)) ]

let configuration_count ?(count = 120) ?(seed = 2013) () =
  List.map
    (fun (label, extra_configs) ->
      study ~label ~count ~seed
        ~spec:{ Synth.Generator.default_spec with extra_configs })
    [ ("minimal configurations", (0, 1)); ("1-4 extra (paper-ish)", (1, 4));
      ("8-12 extra", (8, 12)) ]

let render ~title rows =
  title ^ "\n"
  ^ Report.Table.render
      ~headers:
        [ "Variant"; "Designs"; "Beats mod. %"; "Beats mod. worst %";
          "Escalated %"; "Mean improv. %"; "Mean statics" ]
      (List.map
         (fun r ->
           [ r.label;
             string_of_int r.designs;
             Report.Table.fixed 1 r.beats_modular_total_pct;
             Report.Table.fixed 1 r.beats_modular_worst_pct;
             Report.Table.fixed 1 r.escalated_pct;
             Report.Table.fixed 1 r.mean_improvement_pct;
             Report.Table.fixed 2 r.mean_statics ])
         rows)
