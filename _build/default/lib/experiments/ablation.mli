(** Ablation studies for the design choices called out in DESIGN.md:
    the frequency-weight rule (configuration support vs the literal
    minimum-edge-weight rule), static promotion on/off, the restart
    budget, and the pairwise cost metric vs a stateful runtime
    simulation. *)

type variant_result = {
  label : string;
  total_frames : int;
  worst_frames : int;
  regions : int;
  statics : int;
  base_partitions : int;
}

val frequency_rule : unit -> variant_result list
(** Case study (both configuration sets) under [Support] and [Min_edge]. *)

val static_promotion : unit -> variant_result list
(** Case study with promotion enabled vs disabled. *)

val restart_budget : unit -> variant_result list
(** Case study at restart budgets 0, 2, 8 and 24. *)

type proxy_result = {
  design_name : string;
  pairwise_mean_frames : float;
      (** Mean over unordered configuration pairs of the paper's
          transition cost — the static proxy. *)
  simulated_mean_frames : float;
      (** Mean frames per transition over a long random adaptation walk
          with stateful region contents. *)
}

val proxy_vs_simulation : ?steps:int -> ?seed:int -> unit -> proxy_result list
(** Runs the receiver case studies and the running example. Per
    transition the stateful simulation never writes more frames than the
    pairwise proxy (don't-care regions retain content), so the means track
    each other closely; they can differ slightly because a walk weights
    transitions by visit frequency rather than uniformly. *)

type gap_result = {
  name : string;
  candidate_size : int;
  greedy_total : int;
  anneal_total : int;  (** Simulated annealing ({!Prcore.Anneal}). *)
  exact_total : int;
  gap_pct : float;  (** Greedy vs exact. *)
  anneal_gap_pct : float;  (** Annealing vs exact. *)
  exact_optimal : bool;
}

val optimality_gap : ?count:int -> ?seed:int -> unit -> gap_result list
(** Greedy allocator and simulated annealing vs the exact
    branch-and-bound ({!Prcore.Exact}) on the first candidate set of
    small synthetic designs, under the automatically selected device's
    budget. Defaults: 20 designs, seed 11. *)

type weighted_result = {
  design_name : string;
  uniform_objective_rate : float;
      (** Expected frames/step under the chain, for the scheme optimised
          with the paper's unweighted objective. *)
  weighted_objective_rate : float;
      (** Same, for the scheme optimised with the chain's edge rates —
          the paper's future-work extension. *)
  improvement_pct : float;
}

val weighted_objective : ?seed:int -> unit -> weighted_result list
(** Case-study designs under a skewed random Markov adaptation workload:
    optimising for the known transition statistics should never lose to
    optimising the uniform proxy, and typically wins. *)

type cache_result = {
  label : string;
  capacity_frames : int;
  hit_rate_pct : float;
  icap_ms : float;
  fetch_ms : float;
  total_ms : float;
}

val fetch_cache : ?steps:int -> ?seed:int -> unit -> cache_result list
(** Fetch-path ablation on the receiver case study over a long adaptation
    walk from slow configuration flash: no cache vs an on-chip bitstream
    cache at several capacities and eviction policies. Quantifies the
    "delay in fetching partial bitstreams from external memory" the paper
    flags as part of real reconfiguration time. *)

type arch_result = {
  arch : string;
  region_frames : int list;
  total_frames : int;
  total_bytes : int;
}

val cross_architecture : unit -> arch_result list
(** The case-study partitioning re-costed under Virtex-4/5/6 tile
    geometries ({!Fpga.Arch}): same regions and transition pattern,
    family-specific frames and bitstream bytes. *)

val render_arch : arch_result list -> string

val render_variants : header:string -> variant_result list -> string
val render_proxy : proxy_result list -> string
val render_gap : gap_result list -> string
val render_cache : cache_result list -> string
val render_weighted : weighted_result list -> string
