lib/experiments/faults.mli:
