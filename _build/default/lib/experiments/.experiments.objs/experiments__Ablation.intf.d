lib/experiments/ablation.mli:
