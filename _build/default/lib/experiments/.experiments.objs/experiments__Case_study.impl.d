lib/experiments/case_study.ml: Array Baselines Cluster Format Fpga List Prcore Prdesign Printf Report
