lib/experiments/faults.ml: Baselines List Prcore Prdesign Prfault Printf Report Runtime Synth
