lib/experiments/sweep.mli: Fpga Prcore Synth
