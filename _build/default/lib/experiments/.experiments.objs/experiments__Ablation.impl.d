lib/experiments/ablation.ml: Array Cluster Fpga Fun List Prcore Prdesign Printf Report Runtime String Synth
