lib/experiments/sweep.ml: Baselines Fpga List Prcore Prdesign Printf Report String Synth
