lib/experiments/sensitivity.mli:
