lib/experiments/sensitivity.ml: Baselines List Printf Report Sweep Synth
