lib/experiments/case_study.mli: Baselines Cluster Prcore Prdesign
