(** A small structural-Verilog AST and printer — enough to emit the
    wrapper modules of the paper's tool-flow step 3 ("wrapper modules are
    created that group together modes that have been combined in the
    partitioning phase"). *)

type direction = Input | Output

type port = { port_name : string; direction : direction; width : int }
(** [width] in bits; 1 prints without a range. *)

type expr =
  | Id of string
  | Literal of { width : int; value : int }  (** e.g. [2'b01]. *)
  | Select of string * int  (** [sig[i]]. *)
  | Concat of expr list
  | Eq of expr * expr
  | Mux of expr * expr * expr  (** [cond ? a : b]. *)

type item =
  | Comment of string
  | Wire of { wire_name : string; width : int }
  | Assign of { lhs : string; rhs : expr }
  | Instance of {
      module_name : string;
      instance_name : string;
      connections : (string * expr) list;  (** formal -> actual. *)
    }

type module_decl = {
  name : string;
  ports : port list;
  items : item list;
}

val validate : module_decl -> (unit, string list) result
(** Checks identifier legality (Verilog simple identifiers), unique port
    and wire names, positive widths, and that assigns/connections only
    reference declared ports or wires (literal-only expressions aside). *)

val to_verilog : module_decl -> string
(** Verilog-2001 text. @raise Invalid_argument when {!validate} fails. *)

val legal_identifier : string -> bool
val mangle : string -> string
(** Turn an arbitrary name (e.g. ["F.Filter1"]) into a legal identifier
    (["F_Filter1"]). *)
