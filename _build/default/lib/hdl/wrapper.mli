(** Wrapper generation — the paper's tool-flow step 3.

    Every mode is assumed to implement the design's registered streaming
    interface (the case study's modules "communicate with each other using
    a simple streaming bus interface"): [clk], [rst], a 32-bit slave
    stream ([s_data]/[s_valid]/[s_ready]) and a 32-bit master stream
    ([m_data]/[m_valid]/[m_ready]).

    For each base partition (cluster) a {e variant} module chains its
    member modes in module order — the netlist implemented by that
    region's corresponding partial bitstream. A static wrapper
    instantiates the statically placed clusters side by side, and a top
    level stitches one initial variant per region together with the
    static wrapper and an ICAP-controller stub. *)

val mode_stub : Prdesign.Design.t -> Prdesign.Design.mode_id -> Ast.module_decl
(** Black-box stub for one mode, carrying its resource estimate as a
    comment; synthesis would replace it with the real netlist. *)

val variant_module :
  Prdesign.Design.t -> Cluster.Base_partition.t -> Ast.module_decl
(** The region-variant netlist for one cluster: member modes chained
    stream-wise in module-index order. *)

val variant_name : Prdesign.Design.t -> Cluster.Base_partition.t -> string

val region_variants : Prcore.Scheme.t -> region:int -> Ast.module_decl list
(** One variant per cluster hosted by the region, in priority order.
    @raise Invalid_argument on an out-of-range region. *)

val static_wrapper : Prcore.Scheme.t -> Ast.module_decl option
(** [None] when the scheme promotes nothing to static. Static clusters
    get independent stream ports ([sN_*]/[mN_*]). *)

val top_level : ?initial:int -> Prcore.Scheme.t -> Ast.module_decl
(** Top level for the initial full bitstream: per region, the variant
    resident under configuration [initial] (default 0; idle regions get
    their first-listed cluster), plus the static wrapper and an
    [icap_controller] stub. *)

val emit_scheme : ?initial:int -> Prcore.Scheme.t -> (string * string) list
(** Every file the flow writes: one [(filename, verilog)] pair per mode
    stub, per region variant, the static wrapper (when present) and the
    top level. Filenames are unique and end in [.v]. *)
