type direction = Input | Output

type port = { port_name : string; direction : direction; width : int }

type expr =
  | Id of string
  | Literal of { width : int; value : int }
  | Select of string * int
  | Concat of expr list
  | Eq of expr * expr
  | Mux of expr * expr * expr

type item =
  | Comment of string
  | Wire of { wire_name : string; width : int }
  | Assign of { lhs : string; rhs : expr }
  | Instance of {
      module_name : string;
      instance_name : string;
      connections : (string * expr) list;
    }

type module_decl = {
  name : string;
  ports : port list;
  items : item list;
}

let legal_identifier s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '$' -> true | _ -> false)
       s

let mangle s =
  let mapped =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
        | _ -> '_')
      s
  in
  if mapped = "" then "_"
  else
    match mapped.[0] with
    | '0' .. '9' -> "_" ^ mapped
    | _ -> mapped

let rec expr_identifiers = function
  | Id name | Select (name, _) -> [ name ]
  | Literal _ -> []
  | Concat exprs -> List.concat_map expr_identifiers exprs
  | Eq (a, b) -> expr_identifiers a @ expr_identifiers b
  | Mux (c, a, b) ->
    expr_identifiers c @ expr_identifiers a @ expr_identifiers b

let validate m =
  let issues = ref [] in
  let problem fmt = Printf.ksprintf (fun s -> issues := s :: !issues) fmt in
  if not (legal_identifier m.name) then
    problem "illegal module name %S" m.name;
  let names = Hashtbl.create 16 in
  let declare kind name width =
    if not (legal_identifier name) then problem "illegal %s name %S" kind name;
    if width <= 0 then problem "%s %s has non-positive width" kind name;
    if Hashtbl.mem names name then problem "duplicate declaration %S" name
    else Hashtbl.add names name ()
  in
  List.iter (fun p -> declare "port" p.port_name p.width) m.ports;
  List.iter
    (function
      | Wire { wire_name; width } -> declare "wire" wire_name width
      | Comment _ | Assign _ | Instance _ -> ())
    m.items;
  let check_ref context name =
    if not (Hashtbl.mem names name) then
      problem "%s references undeclared signal %S" context name
  in
  List.iter
    (function
      | Comment _ | Wire _ -> ()
      | Assign { lhs; rhs } ->
        check_ref "assign" lhs;
        List.iter (check_ref "assign") (expr_identifiers rhs)
      | Instance { instance_name; connections; module_name } ->
        if not (legal_identifier instance_name) then
          problem "illegal instance name %S" instance_name;
        if not (legal_identifier module_name) then
          problem "illegal instanced module name %S" module_name;
        List.iter
          (fun (formal, actual) ->
            if not (legal_identifier formal) then
              problem "illegal formal port %S" formal;
            List.iter
              (check_ref ("instance " ^ instance_name))
              (expr_identifiers actual))
          connections)
    m.items;
  match List.rev !issues with [] -> Ok () | issues -> Error issues

let rec emit_expr buf = function
  | Id name -> Buffer.add_string buf name
  | Literal { width; value } ->
    Buffer.add_string buf (Printf.sprintf "%d'd%d" width value)
  | Select (name, i) -> Buffer.add_string buf (Printf.sprintf "%s[%d]" name i)
  | Concat exprs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i e ->
        if i > 0 then Buffer.add_string buf ", ";
        emit_expr buf e)
      exprs;
    Buffer.add_char buf '}'
  | Eq (a, b) ->
    Buffer.add_char buf '(';
    emit_expr buf a;
    Buffer.add_string buf " == ";
    emit_expr buf b;
    Buffer.add_char buf ')'
  | Mux (c, a, b) ->
    Buffer.add_char buf '(';
    emit_expr buf c;
    Buffer.add_string buf " ? ";
    emit_expr buf a;
    Buffer.add_string buf " : ";
    emit_expr buf b;
    Buffer.add_char buf ')'

let range width = if width = 1 then "" else Printf.sprintf "[%d:0] " (width - 1)

let to_verilog m =
  (match validate m with
   | Ok () -> ()
   | Error issues ->
     invalid_arg ("Ast.to_verilog: " ^ String.concat "; " issues));
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "module %s (\n" m.name);
  List.iteri
    (fun i p ->
      Buffer.add_string buf
        (Printf.sprintf "  %s %s%s%s\n"
           (match p.direction with Input -> "input" | Output -> "output")
           (range p.width) p.port_name
           (if i = List.length m.ports - 1 then "" else ",")))
    m.ports;
  Buffer.add_string buf ");\n\n";
  List.iter
    (fun item ->
      (match item with
       | Comment text -> Buffer.add_string buf (Printf.sprintf "  // %s\n" text)
       | Wire { wire_name; width } ->
         Buffer.add_string buf
           (Printf.sprintf "  wire %s%s;\n" (range width) wire_name)
       | Assign { lhs; rhs } ->
         Buffer.add_string buf (Printf.sprintf "  assign %s = " lhs);
         emit_expr buf rhs;
         Buffer.add_string buf ";\n"
       | Instance { module_name; instance_name; connections } ->
         Buffer.add_string buf
           (Printf.sprintf "  %s %s (\n" module_name instance_name);
         List.iteri
           (fun i (formal, actual) ->
             Buffer.add_string buf (Printf.sprintf "    .%s(" formal);
             emit_expr buf actual;
             Buffer.add_string buf
               (if i = List.length connections - 1 then ")\n" else "),\n"))
           connections;
         Buffer.add_string buf "  );\n"))
    m.items;
  Buffer.add_string buf (Printf.sprintf "\nendmodule // %s\n" m.name);
  Buffer.contents buf
