module Design = Prdesign.Design
module Base_partition = Cluster.Base_partition
module Scheme = Prcore.Scheme
open Ast

let data_width = 32

let stream_ports prefix_in prefix_out =
  [ { port_name = prefix_in ^ "_data"; direction = Input; width = data_width };
    { port_name = prefix_in ^ "_valid"; direction = Input; width = 1 };
    { port_name = prefix_in ^ "_ready"; direction = Output; width = 1 };
    { port_name = prefix_out ^ "_data"; direction = Output; width = data_width };
    { port_name = prefix_out ^ "_valid"; direction = Output; width = 1 };
    { port_name = prefix_out ^ "_ready"; direction = Input; width = 1 } ]

let control_ports =
  [ { port_name = "clk"; direction = Input; width = 1 };
    { port_name = "rst"; direction = Input; width = 1 } ]

let mode_module_name design mode = mangle (Design.mode_name design mode)

let mode_stub design mode =
  let r = Design.mode_resources design mode in
  { name = mode_module_name design mode;
    ports = control_ports @ stream_ports "s" "m";
    items =
      [ Comment
          (Printf.sprintf
             "black box for %s: approx. %d CLBs, %d BRAMs, %d DSPs"
             (Design.mode_name design mode)
             r.Fpga.Resource.clb r.Fpga.Resource.bram r.Fpga.Resource.dsp);
        (* Stub behaviour: pass the stream through. *)
        Assign { lhs = "m_data"; rhs = Id "s_data" };
        Assign { lhs = "m_valid"; rhs = Id "s_valid" };
        Assign { lhs = "s_ready"; rhs = Id "m_ready" } ] }

let variant_name design (bp : Base_partition.t) =
  mangle
    ("variant_"
     ^ String.concat "_" (List.map (Design.mode_label design) bp.modes))

let variant_module design (bp : Base_partition.t) =
  (* Chain the cluster's modes in module-index order; base-partition mode
     lists are already ascending, which is module-major. *)
  let modes = bp.Base_partition.modes in
  let stage_wire i suffix width =
    Wire { wire_name = Printf.sprintf "stage%d_%s" i suffix; width }
  in
  let wires =
    List.concat
      (List.mapi
         (fun i _ ->
           [ stage_wire i "data" data_width;
             stage_wire i "valid" 1;
             stage_wire i "ready" 1 ])
         modes)
  in
  let n = List.length modes in
  let instances =
    List.mapi
      (fun i mode ->
        let src suffix =
          if i = 0 then Id ("s_" ^ suffix)
          else Id (Printf.sprintf "stage%d_%s" (i - 1) suffix)
        in
        let dst suffix = Id (Printf.sprintf "stage%d_%s" i suffix) in
        let downstream_ready =
          if i = n - 1 then Id "m_ready"
          else Id (Printf.sprintf "stage%d_ready" (i + 1))
        in
        (* stageN_ready is the ready signal *entering* stage N from
           upstream, produced by the stage itself. *)
        Instance
          { module_name = mode_module_name design mode;
            instance_name = mangle ("u_" ^ Design.mode_label design mode);
            connections =
              [ ("clk", Id "clk");
                ("rst", Id "rst");
                ("s_data", src "data");
                ("s_valid", src "valid");
                ("s_ready", dst "ready");
                ("m_data", dst "data");
                ("m_valid", dst "valid");
                ("m_ready", downstream_ready) ] })
      modes
  in
  (* Stage i's master side feeds stage i+1; the wrapper's slave ready is
     stage 0's, the master outputs are the last stage's. *)
  let last = n - 1 in
  let tail =
    [ Assign { lhs = "s_ready"; rhs = Id (Printf.sprintf "stage%d_ready" 0) };
      Assign { lhs = "m_data"; rhs = Id (Printf.sprintf "stage%d_data" last) };
      Assign { lhs = "m_valid"; rhs = Id (Printf.sprintf "stage%d_valid" last) } ]
  in
  { name = variant_name design bp;
    ports = control_ports @ stream_ports "s" "m";
    items =
      Comment
        (Printf.sprintf "region variant hosting %s (freq weight %d)"
           (Base_partition.label design bp)
           bp.Base_partition.freq)
      :: (wires @ instances @ tail) }

let region_variants (scheme : Scheme.t) ~region =
  List.map
    (fun p -> variant_module scheme.Scheme.design scheme.Scheme.partitions.(p))
    (Scheme.region_members scheme region)

let static_wrapper (scheme : Scheme.t) =
  match Scheme.static_members scheme with
  | [] -> None
  | statics ->
    let design = scheme.Scheme.design in
    let ports =
      control_ports
      @ List.concat
          (List.mapi
             (fun i _ ->
               stream_ports (Printf.sprintf "s%d" i) (Printf.sprintf "m%d" i))
             statics)
    in
    let instances =
      List.mapi
        (fun i p ->
          let bp = scheme.Scheme.partitions.(p) in
          Instance
            { module_name = variant_name design bp;
              instance_name = Printf.sprintf "u_static%d" i;
              connections =
                [ ("clk", Id "clk");
                  ("rst", Id "rst");
                  ("s_data", Id (Printf.sprintf "s%d_data" i));
                  ("s_valid", Id (Printf.sprintf "s%d_valid" i));
                  ("s_ready", Id (Printf.sprintf "s%d_ready" i));
                  ("m_data", Id (Printf.sprintf "m%d_data" i));
                  ("m_valid", Id (Printf.sprintf "m%d_valid" i));
                  ("m_ready", Id (Printf.sprintf "m%d_ready" i)) ] })
        statics
    in
    Some
      { name = mangle (design.Design.name ^ "_static");
        ports;
        items =
          Comment "statically implemented clusters (never reconfigured)"
          :: instances }

let icap_stub =
  { name = "icap_controller";
    ports =
      control_ports
      @ [ { port_name = "start"; direction = Input; width = 1 };
          { port_name = "bitstream_id"; direction = Input; width = 16 };
          { port_name = "busy"; direction = Output; width = 1 } ];
    items =
      [ Comment "configuration manager + ICAP interface (see the paper's [15])";
        Assign { lhs = "busy"; rhs = Literal { width = 1; value = 0 } } ] }

let top_level ?(initial = 0) (scheme : Scheme.t) =
  let design = scheme.Scheme.design in
  let resident r =
    match Scheme.active_partition scheme ~config:initial ~region:r with
    | Some p -> p
    | None -> List.hd (Scheme.region_members scheme r)
  in
  let region_items r =
    let bp = scheme.Scheme.partitions.(resident r) in
    let w suffix width =
      Wire { wire_name = Printf.sprintf "prr%d_%s" r suffix; width }
    in
    [ w "s_data" data_width; w "s_valid" 1; w "s_ready" 1;
      w "m_data" data_width; w "m_valid" 1; w "m_ready" 1;
      Instance
        { module_name = variant_name design bp;
          instance_name = Printf.sprintf "u_prr%d" r;
          connections =
            [ ("clk", Id "clk");
              ("rst", Id "rst");
              ("s_data", Id (Printf.sprintf "prr%d_s_data" r));
              ("s_valid", Id (Printf.sprintf "prr%d_s_valid" r));
              ("s_ready", Id (Printf.sprintf "prr%d_s_ready" r));
              ("m_data", Id (Printf.sprintf "prr%d_m_data" r));
              ("m_valid", Id (Printf.sprintf "prr%d_m_valid" r));
              ("m_ready", Id (Printf.sprintf "prr%d_m_ready" r)) ] } ]
  in
  let icap_items =
    [ Wire { wire_name = "icap_busy"; width = 1 };
      Instance
        { module_name = "icap_controller";
          instance_name = "u_icap";
          connections =
            [ ("clk", Id "clk");
              ("rst", Id "rst");
              ("start", Literal { width = 1; value = 0 });
              ("bitstream_id", Literal { width = 16; value = 0 });
              ("busy", Id "icap_busy") ] } ]
  in
  { name = mangle (design.Design.name ^ "_top");
    ports = control_ports;
    items =
      Comment
        (Printf.sprintf "initial configuration: %s"
           design.Design.configurations.(initial).Prdesign.Configuration.name)
      :: (List.concat
            (List.init scheme.Scheme.region_count region_items)
         @ icap_items) }

let emit_scheme ?initial (scheme : Scheme.t) =
  let design = scheme.Scheme.design in
  let used_modes =
    List.sort_uniq Int.compare
      (List.concat_map
         (fun (bp : Base_partition.t) -> bp.modes)
         (Array.to_list scheme.Scheme.partitions))
  in
  let file decl = (decl.name ^ ".v", to_verilog decl) in
  let stubs = List.map (fun m -> file (mode_stub design m)) used_modes in
  let variants =
    List.map
      (fun bp -> file (variant_module design bp))
      (Array.to_list scheme.Scheme.partitions)
  in
  let static = Option.to_list (Option.map file (static_wrapper scheme)) in
  let top = [ file icap_stub; file (top_level ?initial scheme) ] in
  (* Distinct clusters can never collide, but dedupe defensively on file
     name to keep the contract simple. *)
  let seen = Hashtbl.create 32 in
  List.filter
    (fun (name, _) ->
      if Hashtbl.mem seen name then false
      else begin
        Hashtbl.add seen name ();
        true
      end)
    (stubs @ variants @ static @ top)
