lib/hdl/wrapper.ml: Array Ast Cluster Fpga Hashtbl Int List Option Prcore Prdesign Printf String
