lib/hdl/ast.ml: Buffer Hashtbl List Printf String
