lib/hdl/wrapper.mli: Ast Cluster Prcore Prdesign
