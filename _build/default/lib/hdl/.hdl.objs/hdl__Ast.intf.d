lib/hdl/ast.mli:
