lib/floorplan/placer.ml: Array Bytes Char Format Fpga Fun Int Layout List Option Prtelemetry String
