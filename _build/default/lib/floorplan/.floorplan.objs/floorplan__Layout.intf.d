lib/floorplan/layout.mli: Format Fpga
