lib/floorplan/placer.mli: Format Fpga Layout Prtelemetry
