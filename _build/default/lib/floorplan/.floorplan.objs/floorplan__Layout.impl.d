lib/floorplan/layout.ml: Array Format Fpga Fun List
