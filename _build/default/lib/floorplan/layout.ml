module Device = Fpga.Device
module Tile = Fpga.Tile

type t = { device : Device.t; columns : Tile.kind array }

(* Spread [count] special columns evenly over [width] slots, nudging right
   when the ideal slot is already taken. *)
let spread columns kind count =
  let width = Array.length columns in
  for i = 0 to count - 1 do
    let ideal = (2 * i + 1) * width / (2 * count) in
    let rec free c =
      if c >= width then free 0
      else if columns.(c) = None then c
      else free (c + 1)
    in
    columns.(free ideal) <- Some kind
  done

let make (device : Device.t) =
  let width = device.clb_cols + device.bram_cols + device.dsp_cols in
  let slots = Array.make width None in
  spread slots Tile.Bram device.bram_cols;
  spread slots Tile.Dsp device.dsp_cols;
  let columns =
    Array.map (function Some kind -> kind | None -> Tile.Clb) slots
  in
  { device; columns }

let device t = t.device
let rows t = t.device.Device.rows
let width t = Array.length t.columns

let kind_at t c =
  if c < 0 || c >= width t then invalid_arg "Layout.kind_at: out of range";
  t.columns.(c)

let columns_of_kind t kind =
  List.filter (fun c -> t.columns.(c) = kind) (List.init (width t) Fun.id)

let count_in_window t ~first ~width:w kind =
  if first < 0 || w < 0 || first + w > width t then
    invalid_arg "Layout.count_in_window: window out of range";
  let count = ref 0 in
  for c = first to first + w - 1 do
    if t.columns.(c) = kind then incr count
  done;
  !count

let pp ppf t =
  Array.iter
    (fun kind ->
      Format.pp_print_char ppf
        (match kind with Tile.Clb -> 'C' | Tile.Bram -> 'B' | Tile.Dsp -> 'D'))
    t.columns
