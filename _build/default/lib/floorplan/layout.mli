(** Columnar device layout (paper §IV-B, Fig. 4): a Virtex-5 device is a
    grid of configuration rows by resource columns; every column holds one
    tile kind over its full height. The catalogue stores per-row column
    counts; this module fixes a concrete left-to-right column ordering
    with the BRAM and DSP columns spread evenly through the CLB fabric,
    as on real parts. *)

type t

val make : Fpga.Device.t -> t
val device : t -> Fpga.Device.t
val rows : t -> int
val width : t -> int

val kind_at : t -> int -> Fpga.Tile.kind
(** Tile kind of column [c].
    @raise Invalid_argument when out of range. *)

val columns_of_kind : t -> Fpga.Tile.kind -> int list

val count_in_window : t -> first:int -> width:int -> Fpga.Tile.kind -> int
(** Columns of a kind within [first, first+width).
    @raise Invalid_argument when the window exceeds the device. *)

val pp : Format.formatter -> t -> unit
(** One character per column ([C], [B], [D]) — a compact floorplan map. *)
