(** Plain-text table rendering for the experiment harness. *)

type align = Left | Right

val render :
  ?aligns:align list ->
  headers:string list ->
  string list list ->
  string
(** Monospace table with a header rule. Rows shorter than the header are
    padded with empty cells; longer rows raise [Invalid_argument].
    [aligns] defaults to left for the first column and right for the
    rest (the usual label-plus-numbers shape). *)

val of_ints : int list -> string list
(** Convenience: render a row of integers. *)

val fixed : int -> float -> string
(** [fixed digits v] — fixed-point float formatting. *)
