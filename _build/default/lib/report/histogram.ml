type t = {
  lo : float;
  bucket_width : float;
  counts : int array;
  underflow : int;
  overflow : int;
}

let make ~lo ~hi ~buckets values =
  if buckets <= 0 then invalid_arg "Histogram.make: need >= 1 bucket";
  if hi <= lo then invalid_arg "Histogram.make: empty range";
  let bucket_width = (hi -. lo) /. float_of_int buckets in
  let counts = Array.make buckets 0 in
  let underflow = ref 0 and overflow = ref 0 in
  List.iter
    (fun v ->
      if v < lo then incr underflow
      else if v > hi then incr overflow
      else begin
        let b = int_of_float ((v -. lo) /. bucket_width) in
        let b = if b >= buckets then buckets - 1 else b in
        counts.(b) <- counts.(b) + 1
      end)
    values;
  { lo; bucket_width; counts; underflow = !underflow; overflow = !overflow }

let total t =
  Array.fold_left ( + ) (t.underflow + t.overflow) t.counts

let bucket_label t b =
  if b < 0 || b >= Array.length t.counts then
    invalid_arg "Histogram.bucket_label: out of range";
  let lo = t.lo +. (float_of_int b *. t.bucket_width) in
  Printf.sprintf "[%g, %g)" lo (lo +. t.bucket_width)

let render ?(bar_width = 50) t =
  let buf = Buffer.create 256 in
  let peak = Array.fold_left max 1 t.counts in
  let line label count =
    let bar = count * bar_width / peak in
    Buffer.add_string buf
      (Printf.sprintf "%12s | %-*s %d\n" label bar_width (String.make bar '#')
         count)
  in
  if t.underflow > 0 then line "< lo" t.underflow;
  Array.iteri (fun b count -> line (bucket_label t b) count) t.counts;
  if t.overflow > 0 then line "> hi" t.overflow;
  Buffer.contents buf
