let require_non_empty name = function
  | [] -> invalid_arg (name ^ ": empty list")
  | l -> l

let mean values =
  let values = require_non_empty "Stats.mean" values in
  List.fold_left ( +. ) 0. values /. float_of_int (List.length values)

let sorted values = List.sort Float.compare values

let median values =
  let values = sorted (require_non_empty "Stats.median" values) in
  List.nth values ((List.length values - 1) / 2)

let percentile p values =
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
  let values = sorted (require_non_empty "Stats.percentile" values) in
  let n = List.length values in
  let rank =
    int_of_float (ceil (p /. 100. *. float_of_int n)) - 1
  in
  List.nth values (max 0 (min (n - 1) rank))

let minimum values =
  List.fold_left min infinity (require_non_empty "Stats.minimum" values)

let maximum values =
  List.fold_left max neg_infinity (require_non_empty "Stats.maximum" values)

let fraction pred = function
  | [] -> 0.
  | l ->
    float_of_int (List.length (List.filter pred l))
    /. float_of_int (List.length l)

let geometric_mean values =
  let values = require_non_empty "Stats.geometric_mean" values in
  List.iter
    (fun v ->
      if v <= 0. then invalid_arg "Stats.geometric_mean: non-positive value")
    values;
  exp (mean (List.map log values))
