lib/report/histogram.mli:
