lib/report/histogram.ml: Array Buffer List Printf String
