lib/report/stats.mli:
