lib/report/table.mli:
