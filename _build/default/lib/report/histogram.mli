(** Fixed-width bucketed histograms, used for the paper's Fig. 9 panels
    (percentage-change distributions over the synthetic population). *)

type t = private {
  lo : float;  (** Lower edge of the first bucket. *)
  bucket_width : float;
  counts : int array;
  underflow : int;
  overflow : int;
}

val make : lo:float -> hi:float -> buckets:int -> float list -> t
(** Values in [lo, hi) are bucketed uniformly; values outside are counted
    in [underflow]/[overflow]. A value equal to [hi] lands in the last
    bucket (closed upper edge). @raise Invalid_argument on a non-positive
    bucket count or an empty range. *)

val total : t -> int
(** All values including under/overflow. *)

val bucket_label : t -> int -> string
(** E.g. ["[-10, 0)"] for bucket 0 of the Fig. 9 axis. *)

val render : ?bar_width:int -> t -> string
(** ASCII rendering: one line per bucket with a proportional bar and the
    count, plus under/overflow lines when non-zero. *)
