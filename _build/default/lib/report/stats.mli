(** Small summary-statistics helpers for the experiment harness. *)

val mean : float list -> float
(** @raise Invalid_argument on an empty list. *)

val median : float list -> float
(** Lower median. @raise Invalid_argument on an empty list. *)

val percentile : float -> float list -> float
(** [percentile p values] with [p] in [0, 100], nearest-rank.
    @raise Invalid_argument on an empty list or [p] out of range. *)

val minimum : float list -> float
val maximum : float list -> float

val fraction : ('a -> bool) -> 'a list -> float
(** Share of elements satisfying the predicate; [0.] on an empty list. *)

val geometric_mean : float list -> float
(** @raise Invalid_argument on an empty list or non-positive values. *)
