type align = Left | Right

let render ?aligns ~headers rows =
  let columns = List.length headers in
  let aligns =
    match aligns with
    | Some l ->
      if List.length l <> columns then
        invalid_arg "Table.render: aligns/header length mismatch";
      l
    | None -> List.init columns (fun i -> if i = 0 then Left else Right)
  in
  let pad_row row =
    let n = List.length row in
    if n > columns then invalid_arg "Table.render: row wider than header";
    row @ List.init (columns - n) (fun _ -> "")
  in
  let rows = List.map pad_row rows in
  let widths =
    List.mapi
      (fun c header ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row c)))
          (String.length header) rows)
      headers
  in
  let buf = Buffer.create 256 in
  let emit_cell width align text =
    let padding = String.make (width - String.length text) ' ' in
    match align with
    | Left -> Buffer.add_string buf (text ^ padding)
    | Right -> Buffer.add_string buf (padding ^ text)
  in
  let emit_row cells =
    List.iteri
      (fun c cell ->
        if c > 0 then Buffer.add_string buf "  ";
        emit_cell (List.nth widths c) (List.nth aligns c) cell)
      cells;
    Buffer.add_char buf '\n'
  in
  emit_row headers;
  Buffer.add_string buf
    (String.concat "  " (List.map (fun w -> String.make w '-') widths));
  Buffer.add_char buf '\n';
  List.iter emit_row rows;
  Buffer.contents buf

let of_ints l = List.map string_of_int l
let fixed digits v = Printf.sprintf "%.*f" digits v
