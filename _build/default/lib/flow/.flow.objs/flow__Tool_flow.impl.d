lib/flow/tool_flow.ml: Array Bitgen Buffer Bytes Filename Floorplan Format Fpga Fun Hdl List Prcore Prdesign Prfault Printf Prtelemetry Runtime Synth Sys
