lib/flow/tool_flow.mli: Bitgen Floorplan Fpga Prcore Prdesign Prtelemetry Runtime
