lib/telemetry/prtelemetry.ml: Event Json Sink Telemetry
