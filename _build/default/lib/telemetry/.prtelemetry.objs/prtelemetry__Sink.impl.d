lib/telemetry/sink.ml: Event List
