lib/telemetry/event.mli: Json
