lib/telemetry/event.ml: Json Option Printf Result
