lib/telemetry/json.ml: Buffer Char Float List Printf String
