lib/telemetry/telemetry.ml: Buffer Event Fun Hashtbl Json List Printf Report Sink String Sys
