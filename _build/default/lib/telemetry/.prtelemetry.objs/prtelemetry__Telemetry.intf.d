lib/telemetry/telemetry.mli: Event Json Sink
