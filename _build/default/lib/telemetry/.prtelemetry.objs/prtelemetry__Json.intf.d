lib/telemetry/json.mli:
