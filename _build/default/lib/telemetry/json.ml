type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---------------------------------------------------------------- encode *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if not (Float.is_finite f) then "null"
  else begin
    (* Shortest representation that still round-trips through our own
       parser: always keep a float marker so Int/Float survive. *)
    let s = Printf.sprintf "%.12g" f in
    if
      String.exists (fun c -> c = '.' || c = 'e' || c = 'E' || c = 'n') s
    then s
    else s ^ ".0"
  end

let rec encode buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        encode buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape buf k;
        Buffer.add_char buf ':';
        encode buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 128 in
  encode buf v;
  Buffer.contents buf

(* ----------------------------------------------------------------- parse *)

exception Fail of string

let of_string text =
  let n = String.length text in
  let pos = ref 0 in
  let fail message = raise (Fail (Printf.sprintf "%s at offset %d" message !pos)) in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match text.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub text !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string"
      else begin
        let c = text.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents buf
        | '\\' ->
          (if !pos >= n then fail "unterminated escape"
           else begin
             let e = text.[!pos] in
             advance ();
             match e with
             | '"' -> Buffer.add_char buf '"'
             | '\\' -> Buffer.add_char buf '\\'
             | '/' -> Buffer.add_char buf '/'
             | 'n' -> Buffer.add_char buf '\n'
             | 'r' -> Buffer.add_char buf '\r'
             | 't' -> Buffer.add_char buf '\t'
             | 'b' -> Buffer.add_char buf '\b'
             | 'f' -> Buffer.add_char buf '\012'
             | 'u' ->
               if !pos + 4 > n then fail "truncated \\u escape"
               else begin
                 let hex = String.sub text !pos 4 in
                 pos := !pos + 4;
                 match int_of_string_opt ("0x" ^ hex) with
                 | Some code when code < 0x80 ->
                   Buffer.add_char buf (Char.chr code)
                 | Some _ -> Buffer.add_char buf '?'
                 | None -> fail "bad \\u escape"
               end
             | _ -> fail "unknown escape"
           end);
          loop ()
        | c -> Buffer.add_char buf c; loop ()
      end
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let number_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && number_char text.[!pos] do
      advance ()
    done;
    let token = String.sub text start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') token then
      match float_of_string_opt token with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt token with
      | Some i -> Int i
      | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); items (v :: acc)
          | Some ']' -> advance (); List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        List (items [])
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (key, v)
        in
        let rec fields acc =
          let f = field () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); fields (f :: acc)
          | Some '}' -> advance (); List.rev (f :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail message -> Error message

(* ------------------------------------------------------------- accessors *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function
  | Int n -> Some n
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_float = function
  | Int n -> Some (float_of_int n)
  | Float f -> Some f
  | _ -> None

let to_str = function String s -> Some s | _ -> None
