type kind = Begin | End | Point | Counter | Gauge

type t = {
  seq : int;
  time : float;
  kind : kind;
  name : string;
  attrs : (string * Json.t) list;
}

let kind_to_string = function
  | Begin -> "begin"
  | End -> "end"
  | Point -> "point"
  | Counter -> "counter"
  | Gauge -> "gauge"

let kind_of_string = function
  | "begin" -> Some Begin
  | "end" -> Some End
  | "point" -> Some Point
  | "counter" -> Some Counter
  | "gauge" -> Some Gauge
  | _ -> None

let to_json e =
  let base =
    [ ("seq", Json.Int e.seq);
      ("t", Json.Float e.time);
      ("kind", Json.String (kind_to_string e.kind));
      ("name", Json.String e.name) ]
  in
  Json.Obj (if e.attrs = [] then base else base @ [ ("attrs", Json.Obj e.attrs) ])

let of_json json =
  let field name extract =
    match Option.bind (Json.member name json) extract with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "event: missing or invalid %S field" name)
  in
  let ( let* ) = Result.bind in
  let* seq = field "seq" Json.to_int in
  let* time = field "t" Json.to_float in
  let* kind_name = field "kind" Json.to_str in
  let* name = field "name" Json.to_str in
  let* kind =
    match kind_of_string kind_name with
    | Some k -> Ok k
    | None -> Error (Printf.sprintf "event: unknown kind %S" kind_name)
  in
  let* attrs =
    match Json.member "attrs" json with
    | None -> Ok []
    | Some (Json.Obj fields) -> Ok fields
    | Some _ -> Error "event: attrs is not an object"
  in
  Ok { seq; time; kind; name; attrs }

let to_jsonl e = Json.to_string (to_json e)
