(** Where telemetry events go. Three implementations:

    - {!null} — drops everything; the collector short-circuits before
      building the event, so instrumentation is free when disabled;
    - {!memory} — buffers events in order, for later export as JSONL or
      a human summary;
    - {!channel}/{!file} — streams one JSONL line per event as it
      happens (for long-running processes where buffering is unwanted). *)

type t

val null : t

val memory : unit -> t
(** A fresh, independent in-memory buffer. *)

val channel : out_channel -> t
(** Stream JSONL lines to an already-open channel (not closed by
    {!close}d — the caller owns it). *)

val file : string -> (t, string) result
(** Open [path] for writing and stream JSONL lines into it; the error
    case carries the [Sys_error] message. {!close} closes the file. *)

val emit : t -> Event.t -> unit
(** Record (or write) one event. No-op on {!null}. *)

val events : t -> Event.t list
(** Buffered events in emission order; [[]] for non-memory sinks. *)

val is_null : t -> bool

val close : t -> unit
(** Flush and close a {!file} sink (idempotent); flush a {!channel}
    sink; no-op otherwise. *)
