module Counter = struct
  type t = { mutable value : int; live : bool }

  let dead = { value = 0; live = false }
  let make () = { value = 0; live = true }
  let incr ?(by = 1) c = if c.live then c.value <- c.value + by
  let value c = c.value
end

type span_acc = {
  mutable calls : int;
  mutable total : float;
  mutable min_v : float;
  mutable max_v : float;
  mutable samples : float list;
  mutable sample_count : int;
}

type t = {
  live : bool;
  sink : Sink.t;
  clock : unit -> float;
  start : float;
  mutable seq : int;
  mutable depth : int;
  counters : (string, Counter.t) Hashtbl.t;
  gauges : (string, float) Hashtbl.t;
  spans : (string, span_acc) Hashtbl.t;
}

let null =
  { live = false;
    sink = Sink.null;
    clock = (fun () -> 0.);
    start = 0.;
    seq = 0;
    depth = 0;
    counters = Hashtbl.create 1;
    gauges = Hashtbl.create 1;
    spans = Hashtbl.create 1 }

let create ?(clock = Sys.time) sink =
  { live = true;
    sink;
    clock;
    start = clock ();
    seq = 0;
    depth = 0;
    counters = Hashtbl.create 16;
    gauges = Hashtbl.create 8;
    spans = Hashtbl.create 16 }

let enabled t = t.live
let tracing t = t.live && not (Sink.is_null t.sink)
let ensure t = if t.live then t else create Sink.null

let emit t kind name attrs =
  t.seq <- t.seq + 1;
  Sink.emit t.sink
    { Event.seq = t.seq; time = t.clock () -. t.start; kind; name; attrs }

let point t ?(attrs = []) name = if tracing t then emit t Event.Point name attrs

(* ----------------------------------------------------------------- spans *)

let max_samples = 512

let span_acc t name =
  match Hashtbl.find_opt t.spans name with
  | Some acc -> acc
  | None ->
    let acc =
      { calls = 0;
        total = 0.;
        min_v = infinity;
        max_v = neg_infinity;
        samples = [];
        sample_count = 0 }
    in
    Hashtbl.add t.spans name acc;
    acc

let record_span t name dt =
  let acc = span_acc t name in
  acc.calls <- acc.calls + 1;
  acc.total <- acc.total +. dt;
  if dt < acc.min_v then acc.min_v <- dt;
  if dt > acc.max_v then acc.max_v <- dt;
  if acc.sample_count < max_samples then begin
    acc.samples <- dt :: acc.samples;
    acc.sample_count <- acc.sample_count + 1
  end

let with_span t ?(attrs = []) name f =
  if not t.live then f ()
  else begin
    let traced = tracing t in
    if traced then
      emit t Event.Begin name (attrs @ [ ("depth", Json.Int t.depth) ]);
    t.depth <- t.depth + 1;
    let t0 = t.clock () in
    Fun.protect
      ~finally:(fun () ->
        let dt = t.clock () -. t0 in
        t.depth <- t.depth - 1;
        record_span t name dt;
        if traced then
          emit t Event.End name
            [ ("ms", Json.Float (dt *. 1e3)); ("depth", Json.Int t.depth) ])
      f
  end

(* --------------------------------------------------- counters and gauges *)

let counter t name =
  if not t.live then Counter.dead
  else
    match Hashtbl.find_opt t.counters name with
    | Some c -> c
    | None ->
      let c = Counter.make () in
      Hashtbl.add t.counters name c;
      c

let incr t ?by name = if t.live then Counter.incr ?by (counter t name)

let counter_value t name =
  match Hashtbl.find_opt t.counters name with
  | Some c -> Counter.value c
  | None -> 0

let set_gauge t name v = if t.live then Hashtbl.replace t.gauges name v
let gauge_value t name = Hashtbl.find_opt t.gauges name

let counters_list t =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (Hashtbl.fold (fun k c acc -> (k, Counter.value c) :: acc) t.counters [])

let gauges_list t =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.gauges [])

let flush t =
  if tracing t then begin
    List.iter
      (fun (name, v) -> emit t Event.Counter name [ ("value", Json.Int v) ])
      (counters_list t);
    List.iter
      (fun (name, v) -> emit t Event.Gauge name [ ("value", Json.Float v) ])
      (gauges_list t)
  end

(* ---------------------------------------------------------------- export *)

let events t = Sink.events t.sink

let to_jsonl t =
  let lines = List.map Event.to_jsonl (events t) in
  match lines with [] -> "" | _ -> String.concat "\n" lines ^ "\n"

let write_jsonl t path =
  match open_out path with
  | exception Sys_error message -> Error message
  | oc ->
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        match output_string oc (to_jsonl t) with
        | () -> Ok ()
        | exception Sys_error message -> Error message)

type span_stats = {
  span_name : string;
  calls : int;
  total_s : float;
  min_s : float;
  max_s : float;
  samples : float list;
}

let span_list t =
  let rows =
    Hashtbl.fold
      (fun name (acc : span_acc) rows ->
        { span_name = name;
          calls = acc.calls;
          total_s = acc.total;
          min_s = (if acc.calls = 0 then 0. else acc.min_v);
          max_s = (if acc.calls = 0 then 0. else acc.max_v);
          samples = acc.samples }
        :: rows)
      t.spans []
  in
  List.sort
    (fun a b ->
      match compare b.total_s a.total_s with
      | 0 -> String.compare a.span_name b.span_name
      | c -> c)
    rows

let ms v = Report.Table.fixed 3 (v *. 1e3)

let summary t =
  if not t.live then "telemetry: disabled\n"
  else begin
    let buf = Buffer.create 1024 in
    let spans = span_list t in
    if spans <> [] then begin
      Buffer.add_string buf "phase timings (CPU):\n";
      Buffer.add_string buf
        (Report.Table.render
           ~headers:[ "phase"; "calls"; "total ms"; "mean ms"; "min ms"; "max ms" ]
           (List.map
              (fun s ->
                [ s.span_name;
                  string_of_int s.calls;
                  ms s.total_s;
                  ms (s.total_s /. float_of_int (max 1 s.calls));
                  ms s.min_s;
                  ms s.max_s ])
              spans));
      (* Latency distribution for repeated spans. *)
      List.iter
        (fun s ->
          if s.calls >= 8 && s.max_s > 0. then begin
            let hi = s.max_s *. 1e3 in
            let histogram =
              Report.Histogram.make ~lo:0. ~hi ~buckets:8
                (List.map (fun v -> v *. 1e3) s.samples)
            in
            Buffer.add_string buf
              (Printf.sprintf "\nlatency of %s (ms, %d samples):\n" s.span_name
                 (List.length s.samples));
            Buffer.add_string buf (Report.Histogram.render histogram)
          end)
        spans
    end;
    let counters = counters_list t in
    if counters <> [] then begin
      if Buffer.length buf > 0 then Buffer.add_char buf '\n';
      Buffer.add_string buf "counters:\n";
      Buffer.add_string buf
        (Report.Table.render ~headers:[ "counter"; "value" ]
           (List.map (fun (k, v) -> [ k; string_of_int v ]) counters))
    end;
    let gauges = gauges_list t in
    if gauges <> [] then begin
      if Buffer.length buf > 0 then Buffer.add_char buf '\n';
      Buffer.add_string buf "gauges:\n";
      Buffer.add_string buf
        (Report.Table.render ~headers:[ "gauge"; "value" ]
           (List.map (fun (k, v) -> [ k; Report.Table.fixed 3 v ]) gauges))
    end;
    if Buffer.length buf = 0 then "telemetry: no data recorded\n"
    else Buffer.contents buf
  end
