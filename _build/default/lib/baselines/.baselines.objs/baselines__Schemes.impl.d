lib/baselines/schemes.ml: Prcore
