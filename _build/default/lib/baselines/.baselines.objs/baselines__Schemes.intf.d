lib/baselines/schemes.mli: Prcore Prdesign
