module Scheme = Prcore.Scheme
module Cost = Prcore.Cost

type labelled = {
  label : string;
  scheme : Scheme.t;
  evaluation : Cost.evaluation;
}

let labelled label scheme =
  { label; scheme; evaluation = Cost.evaluate scheme }

let fully_static design = labelled "Static" (Scheme.fully_static design)
let single_region design = labelled "Single region" (Scheme.single_region design)

let one_module_per_region design =
  labelled "1 Module/Region" (Scheme.one_module_per_region design)

let all design =
  [ fully_static design; one_module_per_region design; single_region design ]

let percent_change ~proposed ~baseline =
  if baseline = 0 then 0.
  else float_of_int (baseline - proposed) /. float_of_int baseline *. 100.
