(** The reference partitioning schemes the paper compares against
    (§IV-A, §V), evaluated with the identical cost model as the proposed
    algorithm. *)

type labelled = {
  label : string;
  scheme : Prcore.Scheme.t;
  evaluation : Prcore.Cost.evaluation;
}

val fully_static : Prdesign.Design.t -> labelled
(** All modes always resident; zero reconfiguration time, maximum area. *)

val single_region : Prdesign.Design.t -> labelled
(** One region holding whole configurations; minimum area, every
    transition reconfigures everything. *)

val one_module_per_region : Prdesign.Design.t -> labelled
(** The "modular" scheme: a region per module sized for its largest
    mode. *)

val all : Prdesign.Design.t -> labelled list
(** The three references in the order of the paper's Table IV. *)

val percent_change : proposed:int -> baseline:int -> float
(** Improvement of [proposed] over [baseline] in percent, positive when
    the proposed value is smaller (the orientation of the paper's
    Fig. 9). [0.] when the baseline is zero. *)
