lib/xmllite/xml.mli:
