lib/xmllite/xml.ml: Buffer Char Fun List Option Printf String
