lib/synth/generator.mli: Prdesign Rng
