lib/synth/rng.mli:
