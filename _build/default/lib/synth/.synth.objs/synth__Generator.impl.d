lib/synth/generator.ml: Array Fpga Fun List Prdesign Printf Rng
