(** Deterministic SplitMix64 pseudo-random generator.

    The synthetic-design experiments must be reproducible run-to-run and
    machine-to-machine, so no [Stdlib.Random] state leaks in: every stream
    derives from an explicit seed. *)

type t

val make : int -> t
(** A generator seeded from the given integer. *)

val split : t -> t
(** An independent generator derived from (and advancing) [t]. *)

val next : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] — uniform in [0, bound).
    @raise Invalid_argument when [bound <= 0]. *)

val range : t -> int -> int -> int
(** [range t lo hi] — uniform in [lo, hi] inclusive.
    @raise Invalid_argument when [hi < lo]. *)

val float : t -> float
(** Uniform in [0, 1). *)

val bool : t -> bool

val choose : t -> 'a array -> 'a
(** @raise Invalid_argument on an empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
