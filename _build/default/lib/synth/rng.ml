type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let make seed = { state = mix (Int64.of_int seed) }

let next t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = next t }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: non-positive bound";
  (* Rejection-free modulo is fine here: bounds are tiny relative to 2^63,
     so bias is negligible for workload generation. *)
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 1)
                  (Int64.of_int bound))

let range t lo hi =
  if hi < lo then invalid_arg "Rng.range: empty range";
  lo + int t (hi - lo + 1)

let float t =
  Int64.to_float (Int64.shift_right_logical (next t) 11) /. 9007199254740992.

let bool t = Int64.logand (next t) 1L = 1L

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
