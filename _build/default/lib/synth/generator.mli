(** Synthetic PR design generator, following the paper's recipe (§V):
    equal numbers of logic-, memory-, DSP- and DSP-and-memory-intensive
    designs; 2–6 modules with 2–4 modes each; 25–4000 CLBs per mode with
    class-dependent BRAM/DSP ranges; a 90 CLB + 8 BRAM static overhead
    (the paper's open-source ICAP controller); and random configurations
    generated until every mode is used at least once. *)

type circuit_class =
  | Logic_intensive
  | Memory_intensive
  | Dsp_intensive
  | Dsp_memory_intensive

val class_name : circuit_class -> string
val all_classes : circuit_class list

type spec = {
  modules : int * int;  (** Inclusive module-count range, default (2, 6). *)
  modes : int * int;  (** Modes per module, default (2, 4). *)
  clb : int * int;  (** CLBs per mode, default (25, 4000). *)
  absence_probability : float;
      (** Chance a module is absent from a configuration (the paper's
          "mode 0"), default 0.15. *)
  extra_configs : int * int;
      (** Extra random configurations beyond those needed to exercise
          every mode, default (1, 4). *)
}

val default_spec : spec

val generate :
  ?spec:spec -> Rng.t -> circuit_class -> index:int -> Prdesign.Design.t
(** One synthetic design named after the class and index. Every mode is
    used by at least one configuration; configuration contents are
    pairwise distinct. *)

val batch :
  ?spec:spec -> seed:int -> count:int -> unit ->
  (circuit_class * Prdesign.Design.t) list
(** [count] designs with the classes interleaved in equal proportion
    (the paper's 1000-design population uses [count = 1000], i.e. 250 per
    class). Deterministic in [seed]. *)
