(* Tests for the baseline schemes (paper §IV-A / Table IV). *)

module Design = Prdesign.Design
module Design_library = Prdesign.Design_library
module Schemes = Baselines.Schemes
module Cost = Prcore.Cost
module Scheme = Prcore.Scheme
module Resource = Fpga.Resource

let example = Design_library.running_example
let receiver = Design_library.video_receiver

let labelled_tests =
  [ Alcotest.test_case "static has zero time" `Quick (fun () ->
        let l = Schemes.fully_static example in
        Alcotest.(check string) "label" "Static" l.Schemes.label;
        Alcotest.(check int) "total" 0 l.evaluation.Cost.total_frames);
    Alcotest.test_case "single region label and structure" `Quick (fun () ->
        let l = Schemes.single_region example in
        Alcotest.(check string) "label" "Single region" l.Schemes.label;
        Alcotest.(check int) "one region" 1 l.scheme.Scheme.region_count);
    Alcotest.test_case "modular label and structure" `Quick (fun () ->
        let l = Schemes.one_module_per_region example in
        Alcotest.(check string) "label" "1 Module/Region" l.Schemes.label;
        Alcotest.(check int) "three regions" 3 l.scheme.Scheme.region_count);
    Alcotest.test_case "all returns the three in Table IV order" `Quick
      (fun () ->
        Alcotest.(check (list string)) "labels"
          [ "Static"; "1 Module/Region"; "Single region" ]
          (List.map (fun l -> l.Schemes.label) (Schemes.all example))) ]

let ordering_tests =
  [ Alcotest.test_case "area ordering: static > modular > single" `Quick
      (fun () ->
        (* The §IV-A analysis: static costs the sum of all modes, modular
           the sum of largest modes, single region only the largest
           configuration. *)
        let used scheme = (scheme example).Schemes.evaluation.Cost.used in
        let clb (r : Resource.t) = r.Resource.clb in
        Alcotest.(check bool) "static > modular" true
          (clb (used Schemes.fully_static)
           > clb (used Schemes.one_module_per_region));
        Alcotest.(check bool) "modular > single" true
          (clb (used Schemes.one_module_per_region)
           > clb (used Schemes.single_region)));
    Alcotest.test_case "time ordering: static < modular < single" `Quick
      (fun () ->
        let total scheme =
          (scheme example).Schemes.evaluation.Cost.total_frames
        in
        Alcotest.(check bool) "static minimum" true
          (total Schemes.fully_static < total Schemes.one_module_per_region);
        Alcotest.(check bool) "modular < single" true
          (total Schemes.one_module_per_region < total Schemes.single_region));
    Alcotest.test_case "receiver: single-region worst can beat modular worst"
      `Quick (fun () ->
        (* Fig. 8 commentary: the single-region scheme's worst case is the
           (small) region size, while modular's worst case sums several
           regions. *)
        let worst scheme =
          (scheme receiver).Schemes.evaluation.Cost.worst_frames
        in
        Alcotest.(check bool) "single < modular on worst" true
          (worst Schemes.single_region < worst Schemes.one_module_per_region))
  ]

let receiver_numbers_tests =
  [ Alcotest.test_case "receiver modular usage matches Table II arithmetic"
      `Quick (fun () ->
        (* Largest modes per module, tile-quantised:
           F 818->820, R 318->320, M 97->100, D 748->760, V 4700 = 6700. *)
        let l = Schemes.one_module_per_region receiver in
        Alcotest.(check int) "clb" 6700 l.evaluation.Cost.used.Resource.clb;
        Alcotest.(check int) "bram" 60 l.evaluation.Cost.used.Resource.bram;
        Alcotest.(check int) "dsp" 144 l.evaluation.Cost.used.Resource.dsp);
    Alcotest.test_case "receiver static usage is the Table II column sum"
      `Quick (fun () ->
        let l = Schemes.fully_static receiver in
        Alcotest.(check int) "clb" 15751 l.evaluation.Cost.used.Resource.clb;
        Alcotest.(check int) "bram" 83 l.evaluation.Cost.used.Resource.bram;
        Alcotest.(check int) "dsp" 204 l.evaluation.Cost.used.Resource.dsp);
    Alcotest.test_case "receiver modular total is near the paper's 244872"
      `Quick (fun () ->
        let l = Schemes.one_module_per_region receiver in
        let total = float_of_int l.evaluation.Cost.total_frames in
        Alcotest.(check bool) "within 5%" true
          (Float.abs (total -. 244_872.) /. 244_872. < 0.05));
    Alcotest.test_case "single-region total = pairs x region frames" `Quick
      (fun () ->
        let l = Schemes.single_region receiver in
        let configs = Design.configuration_count receiver in
        Alcotest.(check int) "product"
          (configs * (configs - 1) / 2 * l.evaluation.Cost.region_frames.(0))
          l.evaluation.Cost.total_frames) ]

let percent_tests =
  [ Alcotest.test_case "percent_change orientation" `Quick (fun () ->
        Alcotest.(check (float 1e-9)) "improvement" 50.
          (Schemes.percent_change ~proposed:50 ~baseline:100);
        Alcotest.(check (float 1e-9)) "regression" (-50.)
          (Schemes.percent_change ~proposed:150 ~baseline:100));
    Alcotest.test_case "percent_change zero baseline" `Quick (fun () ->
        Alcotest.(check (float 1e-9)) "zero" 0.
          (Schemes.percent_change ~proposed:10 ~baseline:0)) ]

let () =
  Alcotest.run "baselines"
    [ ("labelled", labelled_tests);
      ("ordering", ordering_tests);
      ("receiver-numbers", receiver_numbers_tests);
      ("percent", percent_tests) ]
