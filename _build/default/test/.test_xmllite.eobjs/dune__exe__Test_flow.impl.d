test/test_flow.ml: Alcotest Array Bitgen Bytes Filename Floorplan Flow Fpga Fun Lazy List Prcore Prdesign Result String Sys
