test/test_flow.ml: Alcotest Array Bitgen Bytes Filename Floorplan Flow Fpga Fun Lazy List Prcore Prdesign Prtelemetry Result String Sys
