test/test_report.ml: Alcotest Array List QCheck2 QCheck_alcotest Report String
