test/test_xmllite.ml: Alcotest Filename Fun List QCheck2 QCheck_alcotest Sys Xmllite
