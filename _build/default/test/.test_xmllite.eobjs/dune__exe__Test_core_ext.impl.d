test/test_core_ext.ml: Alcotest Array Cluster Filename Fpga Fun List Option Prcore Prdesign Runtime String Synth Sys
