test/test_core_ext.mli:
