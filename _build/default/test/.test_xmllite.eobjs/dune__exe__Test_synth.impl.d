test/test_synth.ml: Alcotest Array Fpga Fun Int Lazy List Prdesign Prgraph QCheck2 QCheck_alcotest Synth
