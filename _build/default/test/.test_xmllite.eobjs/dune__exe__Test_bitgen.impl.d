test/test_bitgen.ml: Alcotest Bitgen Bytes Char Floorplan Fpga List Prcore Prdesign Printf QCheck2 QCheck_alcotest Result String
