test/test_prgraph.ml: Alcotest Int List Prdesign Prgraph QCheck2 QCheck_alcotest
