test/test_baselines.ml: Alcotest Array Baselines Float Fpga List Prcore Prdesign
