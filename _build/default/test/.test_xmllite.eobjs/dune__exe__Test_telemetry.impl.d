test/test_telemetry.ml: Alcotest Filename Fun List Option Prcore Prdesign Printf Prtelemetry String Sys
