test/test_integration.ml: Alcotest Array Baselines Filename Floorplan Fpga Fun List Prcore Prdesign Printf Prtelemetry Runtime String Synth Sys
