test/test_integration.ml: Alcotest Array Baselines Filename Floorplan Fpga Fun List Prcore Prdesign Runtime String Synth Sys
