test/test_properties.ml: Alcotest Array Bitgen Cluster Filename Fpga Fun Hdl List Prcore Prdesign QCheck2 QCheck_alcotest Result Runtime String Synth
