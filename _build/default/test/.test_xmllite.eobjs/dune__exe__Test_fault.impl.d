test/test_fault.ml: Alcotest Filename Flow Fun Lazy List Prcore Prdesign Prfault Result Runtime String Synth Sys
