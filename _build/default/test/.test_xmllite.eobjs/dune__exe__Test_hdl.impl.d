test/test_hdl.ml: Alcotest Cluster Filename Hdl Lazy List Prcore Prdesign Result String
