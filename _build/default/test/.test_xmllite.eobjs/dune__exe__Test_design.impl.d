test/test_design.ml: Alcotest Array Filename Fpga Fun List Prdesign Result String Sys
