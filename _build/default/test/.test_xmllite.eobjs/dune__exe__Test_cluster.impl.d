test/test_cluster.ml: Alcotest Cluster Fpga Int List Prdesign Prgraph QCheck2 QCheck_alcotest Synth
