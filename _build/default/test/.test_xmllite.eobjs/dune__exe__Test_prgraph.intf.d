test/test_prgraph.mli:
