test/test_core.ml: Alcotest Array Cluster Float Fpga List Prcore Prdesign Prgraph Printf QCheck2 QCheck_alcotest Result Synth
