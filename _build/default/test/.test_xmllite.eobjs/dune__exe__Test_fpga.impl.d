test/test_fpga.ml: Alcotest Fpga List QCheck2 QCheck_alcotest
