test/test_bitgen.mli:
