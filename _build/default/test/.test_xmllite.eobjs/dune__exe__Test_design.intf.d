test/test_design.mli:
