test/test_experiments.ml: Alcotest Experiments Fpga Lazy List Prcore String
