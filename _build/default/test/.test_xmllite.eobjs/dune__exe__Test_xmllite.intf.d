test/test_xmllite.mli:
