test/test_runtime.ml: Alcotest Array Filename Float Fpga Fun List Prcore Prdesign QCheck2 QCheck_alcotest Result Runtime Synth Sys
