test/test_floorplan.ml: Alcotest Array Floorplan Format Fpga Fun List Prcore Prdesign QCheck2 QCheck_alcotest String
