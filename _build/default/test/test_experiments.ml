(* Tests for the experiment harness: every table/figure regenerator
   produces the paper-anchored artefacts. Sweep-based experiments run on a
   reduced population to keep the suite fast. *)

module Case_study = Experiments.Case_study
module Sweep = Experiments.Sweep
module Ablation = Experiments.Ablation
module Cost = Prcore.Cost

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i =
    if i + nn > nh then false
    else String.sub haystack i nn = needle || scan (i + 1)
  in
  scan 0

let table_tests =
  [ Alcotest.test_case "Table I: 26 partitions, 8/13/5" `Quick (fun () ->
        let t = Case_study.Table1.run () in
        Alcotest.(check int) "singles" 8 t.Case_study.Table1.singles;
        Alcotest.(check int) "pairs" 13 t.pairs;
        Alcotest.(check int) "triples" 5 t.triples;
        let rendered = Case_study.Table1.render t in
        Alcotest.(check bool) "mentions {A3, B2}" true
          (contains rendered "{A3, B2}"));
    Alcotest.test_case "Table II renders all 14 modes" `Quick (fun () ->
        let rendered = Case_study.Table2.render (Case_study.Table2.run ()) in
        List.iter
          (fun needle ->
            Alcotest.(check bool) needle true (contains rendered needle))
          [ "Filter1"; "Turbo"; "MPEG4"; "None"; "4700" ]);
    Alcotest.test_case "Table III/IV: proposed beats modular" `Quick
      (fun () ->
        let t = Case_study.Table3_4.run () in
        Alcotest.(check bool) "improvement > 0" true
          (t.Case_study.Table3_4.improvement_vs_modular_pct > 0.);
        Alcotest.(check bool) "improvement < 15%" true
          (t.improvement_vs_modular_pct < 15.);
        let comparison = Case_study.Table3_4.render_comparison t in
        List.iter
          (fun needle ->
            Alcotest.(check bool) needle true (contains comparison needle))
          [ "Static"; "1 Module/Region"; "Proposed" ];
        Alcotest.(check bool) "partitions render" true
          (contains (Case_study.Table3_4.render_partitions t) "PRR1"));
    Alcotest.test_case "Table IV ordering: static > proposed area" `Quick
      (fun () ->
        let t = Case_study.Table3_4.run () in
        let static_clb =
          t.Case_study.Table3_4.static_.evaluation.Cost.used.Fpga.Resource.clb
        in
        let proposed_clb =
          t.outcome.Prcore.Engine.evaluation.Cost.used.Fpga.Resource.clb
        in
        Alcotest.(check bool) "static much larger" true
          (static_clb > 2 * proposed_clb));
    Alcotest.test_case "Table V: modified set improves more" `Quick (fun () ->
        let t = Case_study.Table5.run () in
        Alcotest.(check bool) "improvement > 0" true
          (t.Case_study.Table5.improvement_vs_modular_pct > 0.);
        Alcotest.(check bool) "mentions static promotion or PRRs" true
          (contains (Case_study.Table5.render t) "PRR1")) ]

let rows = lazy (Sweep.run ~count:40 ~seed:2013 ())

let sweep_tests =
  [ Alcotest.test_case "sweep partitions every design" `Quick (fun () ->
        Alcotest.(check int) "40 rows" 40 (List.length (Lazy.force rows)));
    Alcotest.test_case "rows carry consistent metrics" `Quick (fun () ->
        List.iter
          (fun (r : Sweep.row) ->
            Alcotest.(check bool) "proposed <= single" true
              (r.proposed_total <= r.single_total);
            Alcotest.(check bool) "worst <= total" true
              (r.proposed_worst <= max 1 r.proposed_total);
            Alcotest.(check bool) "regions >= 1" true (r.regions >= 1))
          (Lazy.force rows));
    Alcotest.test_case "summary percentages are sane" `Quick (fun () ->
        let s = Sweep.summarise ~skipped:0 (Lazy.force rows) in
        Alcotest.(check int) "rows" 40 s.Sweep.rows;
        Alcotest.(check bool) "beats single everywhere (paper: 100%)" true
          (s.beats_single_total_pct = 100.);
        Alcotest.(check bool) "beats modular mostly (paper: 73%)" true
          (s.beats_modular_total_pct > 50.);
        Alcotest.(check bool) "percentages within [0,100]" true
          (s.beats_modular_worst_pct >= 0. && s.beats_modular_worst_pct <= 100.));
    Alcotest.test_case "fig renders one row per device group" `Quick
      (fun () ->
        let rendered = Sweep.render_fig ~metric:`Total (Lazy.force rows) in
        Alcotest.(check bool) "has header" true (contains rendered "Proposed");
        Alcotest.(check bool) "has a device" true
          (contains rendered "SX70T" || contains rendered "FX130T"
           || contains rendered "FX95T"));
    Alcotest.test_case "fig9 has four panels" `Quick (fun () ->
        let rendered = Sweep.render_fig9 (Lazy.force rows) in
        List.iter
          (fun tag ->
            Alcotest.(check bool) tag true (contains rendered ("(" ^ tag ^ ")")))
          [ "a"; "b"; "c"; "d" ]);
    Alcotest.test_case "percent changes measure the right baselines" `Quick
      (fun () ->
        let rows = Lazy.force rows in
        let changes = Sweep.percent_changes ~metric:`Total ~baseline:`Single rows in
        Alcotest.(check int) "one per row" (List.length rows)
          (List.length changes);
        Alcotest.(check bool) "all positive vs single" true
          (List.for_all (fun v -> v > 0.) changes));
    Alcotest.test_case "summary renders paper anchors" `Quick (fun () ->
        let s = Sweep.summarise ~skipped:0 (Lazy.force rows) in
        let rendered = Sweep.render_summary s in
        Alcotest.(check bool) "mentions the paper's 201" true
          (contains rendered "201");
        Alcotest.(check bool) "mentions 87.5%" true (contains rendered "87.5"))
  ]

let ablation_tests =
  [ Alcotest.test_case "frequency rule variants all solve" `Quick (fun () ->
        let results = Ablation.frequency_rule () in
        Alcotest.(check int) "four variants" 4 (List.length results);
        List.iter
          (fun (r : Ablation.variant_result) ->
            Alcotest.(check bool) "positive total" true (r.total_frames > 0))
          results);
    Alcotest.test_case "min-edge explores at least as many partitions" `Quick
      (fun () ->
        let results = Ablation.frequency_rule () in
        let find label =
          List.find
            (fun (r : Ablation.variant_result) -> contains r.label label)
            results
        in
        let support = find "receiver / support" in
        let min_edge = find "receiver / min-edge" in
        Alcotest.(check bool) "superset" true
          (min_edge.base_partitions >= support.base_partitions));
    Alcotest.test_case "promotion off yields no static members" `Quick
      (fun () ->
        let results = Ablation.static_promotion () in
        List.iter
          (fun (r : Ablation.variant_result) ->
            if contains r.label "off" then
              Alcotest.(check int) "no statics" 0 r.statics)
          results);
    Alcotest.test_case "promotion never hurts total time" `Quick (fun () ->
        let results = Ablation.static_promotion () in
        let total tag =
          (List.find
             (fun (r : Ablation.variant_result) -> contains r.label tag)
             results)
            .total_frames
        in
        Alcotest.(check bool) "receiver" true
          (total "receiver / promotion on" <= total "receiver / promotion off"));
    Alcotest.test_case "restart budget is monotone-ish" `Quick (fun () ->
        let results = Ablation.restart_budget () in
        Alcotest.(check int) "four budgets" 4 (List.length results);
        let totals =
          List.map (fun (r : Ablation.variant_result) -> r.total_frames) results
        in
        Alcotest.(check bool) "24 restarts <= 0 restarts" true
          (List.nth totals 3 <= List.nth totals 0));
    Alcotest.test_case "proxy vs simulation: walk never exceeds proxy" `Quick
      (fun () ->
        List.iter
          (fun (r : Ablation.proxy_result) ->
            Alcotest.(check bool) "simulated <= proxy * 1.05" true
              (r.simulated_mean_frames <= r.pairwise_mean_frames *. 1.05))
          (Ablation.proxy_vs_simulation ~steps:2000 ()));
    Alcotest.test_case "renderers produce tables" `Quick (fun () ->
        let rendered =
          Ablation.render_variants ~header:"x" (Ablation.restart_budget ())
        in
        Alcotest.(check bool) "header" true (contains rendered "Variant");
        let proxy = Ablation.render_proxy (Ablation.proxy_vs_simulation ()) in
        Alcotest.(check bool) "proxy header" true (contains proxy "Pairwise")) ]


let extension_tests =
  [ Alcotest.test_case "optimality gap: greedy within bounds" `Quick
      (fun () ->
        let results = Experiments.Ablation.optimality_gap ~count:8 () in
        Alcotest.(check bool) "some designs" true (List.length results >= 4);
        List.iter
          (fun (r : Experiments.Ablation.gap_result) ->
            Alcotest.(check bool) "gap >= 0" true (r.gap_pct >= -1e-9);
            Alcotest.(check bool) "exact <= greedy" true
              (r.exact_total <= r.greedy_total))
          results);
    Alcotest.test_case "weighted objective never loses under its metric"
      `Quick (fun () ->
        List.iter
          (fun (r : Experiments.Ablation.weighted_result) ->
            Alcotest.(check bool) r.design_name true
              (r.weighted_objective_rate
               <= r.uniform_objective_rate +. 1e-9))
          (Experiments.Ablation.weighted_objective ()));
    Alcotest.test_case "hot-small demo shows a large weighted win" `Quick
      (fun () ->
        let results = Experiments.Ablation.weighted_objective () in
        let demo =
          List.find
            (fun (r : Experiments.Ablation.weighted_result) ->
              r.design_name = "hot-small-demo")
            results
        in
        Alcotest.(check bool) "> 30% improvement" true
          (demo.improvement_pct > 30.));
    Alcotest.test_case "cache ablation: caching never slower than flash-only"
      `Quick (fun () ->
        let results = Experiments.Ablation.fetch_cache ~steps:800 () in
        match results with
        | (baseline : Experiments.Ablation.cache_result) :: cached ->
          Alcotest.(check bool) "baseline misses everything" true
            (baseline.hit_rate_pct = 0.);
          List.iter
            (fun (r : Experiments.Ablation.cache_result) ->
              Alcotest.(check bool) r.label true
                (r.total_ms <= baseline.total_ms +. 1e-6))
            cached
        | [] -> Alcotest.fail "no results");
    Alcotest.test_case "sensitivity studies produce full rows" `Quick
      (fun () ->
        let rows =
          Experiments.Sensitivity.absence_probability ~count:16 ()
        in
        Alcotest.(check int) "three variants" 3 (List.length rows);
        List.iter
          (fun (r : Experiments.Sensitivity.row) ->
            Alcotest.(check bool) "full population" true (r.designs = 16);
            Alcotest.(check bool) "percent range" true
              (r.beats_modular_total_pct >= 0.
               && r.beats_modular_total_pct <= 100.))
          rows);
    Alcotest.test_case "sensitivity render has a row per variant" `Quick
      (fun () ->
        let rows = Experiments.Sensitivity.design_size ~count:8 () in
        let rendered = Experiments.Sensitivity.render ~title:"t" rows in
        Alcotest.(check bool) "mentions paper variant" true
          (contains rendered "2-6 modules")) ]

let () =
  Alcotest.run "experiments"
    [ ("tables", table_tests);
      ("sweep", sweep_tests);
      ("ablation", ablation_tests);
      ("extensions", extension_tests) ]
