(* Tests for the bitstream substrate: CRC-32, bitstream generation,
   serialisation/parsing, and the repository. *)

module Crc32 = Bitgen.Crc32
module Bitstream = Bitgen.Bitstream
module Repository = Bitgen.Repository

let crc_tests =
  [ Alcotest.test_case "known vector: \"123456789\"" `Quick (fun () ->
        (* The canonical CRC-32 check value. *)
        Alcotest.(check int32) "cbf43926" 0xCBF43926l
          (Crc32.string_digest "123456789"));
    Alcotest.test_case "empty buffer" `Quick (fun () ->
        Alcotest.(check int32) "zero" 0l (Crc32.string_digest ""));
    Alcotest.test_case "incremental equals one-shot" `Quick (fun () ->
        let data = Bytes.of_string "partial reconfiguration" in
        let split = 7 in
        let crc =
          Crc32.finalise
            (Crc32.update
               (Crc32.update Crc32.initial data ~pos:0 ~len:split)
               data ~pos:split
               ~len:(Bytes.length data - split))
        in
        Alcotest.(check int32) "same" (Crc32.digest data) crc);
    Alcotest.test_case "sensitive to single-bit change" `Quick (fun () ->
        Alcotest.(check bool) "differs" true
          (Crc32.string_digest "abc" <> Crc32.string_digest "abd"));
    Alcotest.test_case "slice bounds checked" `Quick (fun () ->
        match Crc32.update Crc32.initial (Bytes.create 4) ~pos:2 ~len:5 with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument") ]

let header frames =
  { Bitstream.design = "demo";
    variant = "{A1, B2}";
    region = 3;
    far = Bitstream.far_of_origin ~row:2 ~major:17;
    frames }

let bitstream_tests =
  [ Alcotest.test_case "payload size is frames x 164" `Quick (fun () ->
        let b = Bitstream.generate (header 10) in
        Alcotest.(check int) "payload" 1640 (Bitstream.payload_bytes b);
        Alcotest.(check int) "payload bytes" 1640
          (Bytes.length b.Bitstream.payload));
    Alcotest.test_case "generation is deterministic" `Quick (fun () ->
        let a = Bitstream.serialise (Bitstream.generate (header 5)) in
        let b = Bitstream.serialise (Bitstream.generate (header 5)) in
        Alcotest.(check bool) "identical" true (Bytes.equal a b));
    Alcotest.test_case "different variants differ" `Quick (fun () ->
        let other = { (header 5) with Bitstream.variant = "{A2}" } in
        Alcotest.(check bool) "differ" true
          (not
             (Bytes.equal
                (Bitstream.serialise (Bitstream.generate (header 5)))
                (Bitstream.serialise (Bitstream.generate other)))));
    Alcotest.test_case "round trip" `Quick (fun () ->
        let original = Bitstream.generate (header 8) in
        match Bitstream.parse (Bitstream.serialise original) with
        | Ok parsed ->
          Alcotest.(check bool) "headers equal" true
            (parsed.Bitstream.header = original.Bitstream.header);
          Alcotest.(check bool) "payload equal" true
            (Bytes.equal parsed.Bitstream.payload original.Bitstream.payload)
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "zero-frame bitstream round trips" `Quick (fun () ->
        let original = Bitstream.generate (header 0) in
        Alcotest.(check bool) "ok" true
          (Result.is_ok (Bitstream.parse (Bitstream.serialise original))));
    Alcotest.test_case "corruption detected anywhere" `Quick (fun () ->
        let serialised = Bitstream.serialise (Bitstream.generate (header 6)) in
        List.iter
          (fun pos ->
            let corrupted = Bytes.copy serialised in
            Bytes.set corrupted pos
              (Char.chr (Char.code (Bytes.get corrupted pos) lxor 0x40));
            Alcotest.(check bool)
              (Printf.sprintf "byte %d" pos)
              true
              (Result.is_error (Bitstream.parse corrupted)))
          [ 0; 5; 14; 40; Bytes.length serialised - 1 ]);
    Alcotest.test_case "truncation detected" `Quick (fun () ->
        let serialised = Bitstream.serialise (Bitstream.generate (header 6)) in
        let truncated = Bytes.sub serialised 0 (Bytes.length serialised - 3) in
        Alcotest.(check bool) "error" true
          (Result.is_error (Bitstream.parse truncated)));
    Alcotest.test_case "far encoding" `Quick (fun () ->
        Alcotest.(check int) "packed"
          ((2 lsl 15) lor (17 lsl 7))
          (Bitstream.far_of_origin ~row:2 ~major:17);
        match Bitstream.far_of_origin ~row:(-1) ~major:0 with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    Alcotest.test_case "invalid headers rejected" `Quick (fun () ->
        let invalid f =
          match f () with
          | exception Invalid_argument _ -> ()
          | _ -> Alcotest.fail "expected Invalid_argument"
        in
        invalid (fun () ->
            Bitstream.generate { (header 1) with Bitstream.frames = -1 });
        invalid (fun () ->
            Bitstream.generate { (header 1) with Bitstream.region = 70_000 });
        invalid (fun () ->
            Bitstream.generate
              { (header 1) with Bitstream.design = String.make 80 'x' })) ]

let repository_tests =
  [ Alcotest.test_case "one entry per hosted cluster" `Quick (fun () ->
        let d = Prdesign.Design_library.running_example in
        let s = Prcore.Scheme.one_module_per_region d in
        let device = Fpga.Device.find_exn "LX30" in
        let repo = Repository.build ~device s in
        (* 8 modes grouped in 3 regions: 8 partial bitstreams. *)
        Alcotest.(check int) "entries" 8
          (List.length repo.Repository.entries));
    Alcotest.test_case "partial frames equal region frames" `Quick (fun () ->
        let d = Prdesign.Design_library.running_example in
        let s = Prcore.Scheme.one_module_per_region d in
        let repo = Repository.build ~device:(Fpga.Device.find_exn "LX30") s in
        List.iter
          (fun (e : Repository.entry) ->
            Alcotest.(check int) e.label
              (Prcore.Scheme.region_frames s e.region)
              e.bitstream.Bitstream.header.frames)
          repo.Repository.entries);
    Alcotest.test_case "full bitstream covers the device" `Quick (fun () ->
        let d = Prdesign.Design_library.running_example in
        let s = Prcore.Scheme.one_module_per_region d in
        let device = Fpga.Device.find_exn "LX30" in
        let repo = Repository.build ~device s in
        Alcotest.(check int) "frames" (Fpga.Device.total_frames device)
          repo.Repository.full.Bitstream.header.frames);
    Alcotest.test_case "placement rectangles drive the FAR" `Quick (fun () ->
        let d = Prdesign.Design_library.running_example in
        let s = Prcore.Scheme.one_module_per_region d in
        let placement =
          [| Some { Floorplan.Placer.row = 1; height = 1; col = 5; width = 4 };
             Some { Floorplan.Placer.row = 2; height = 1; col = 9; width = 4 };
             Some { Floorplan.Placer.row = 0; height = 1; col = 0; width = 4 } |]
        in
        let repo =
          Repository.build ~placement ~device:(Fpga.Device.find_exn "LX30") s
        in
        (match Repository.find repo ~region:0 ~partition:0 with
         | Some e ->
           Alcotest.(check int) "far"
             (Bitstream.far_of_origin ~row:1 ~major:5)
             e.bitstream.Bitstream.header.far
         | None -> Alcotest.fail "entry missing"));
    Alcotest.test_case "totals add up" `Quick (fun () ->
        let d = Prdesign.Design_library.running_example in
        let s = Prcore.Scheme.one_module_per_region d in
        let repo = Repository.build ~device:(Fpga.Device.find_exn "LX30") s in
        Alcotest.(check int) "total = partial + full"
          (Repository.total_bytes repo)
          (Repository.partial_bytes repo
           + Bitstream.size_bytes repo.Repository.full));
    Alcotest.test_case "every serialised entry parses back" `Quick (fun () ->
        let d = Prdesign.Design_library.video_receiver in
        let s = Prcore.Scheme.one_module_per_region d in
        let repo = Repository.build ~device:(Fpga.Device.find_exn "FX130T") s in
        List.iter
          (fun (e : Repository.entry) ->
            Alcotest.(check bool) e.label true
              (Result.is_ok
                 (Bitstream.parse (Bitstream.serialise e.bitstream))))
          repo.Repository.entries);
    Alcotest.test_case "load_seconds matches the ICAP model" `Quick (fun () ->
        let d = Prdesign.Design_library.running_example in
        let s = Prcore.Scheme.one_module_per_region d in
        let repo = Repository.build ~device:(Fpga.Device.find_exn "LX30") s in
        let e = List.hd repo.Repository.entries in
        Alcotest.(check (float 1e-12)) "seconds"
          (Fpga.Icap.seconds_of_frames Fpga.Icap.default
             e.bitstream.Bitstream.header.frames)
          (Repository.load_seconds e)) ]

(* Property: serialise/parse round-trips arbitrary headers. *)
let prop_roundtrip =
  let gen =
    QCheck2.Gen.(
      map3
        (fun frames region (row, major) ->
          { Bitstream.design = "prop";
            variant = Printf.sprintf "v%d" region;
            region;
            far = Bitstream.far_of_origin ~row ~major;
            frames })
        (0 -- 64) (0 -- 100)
        (pair (0 -- 11) (0 -- 120)))
  in
  QCheck2.Test.make ~name:"serialise/parse round trip" ~count:100 gen
    (fun header ->
      let b = Bitstream.generate header in
      match Bitstream.parse (Bitstream.serialise b) with
      | Ok parsed -> parsed.Bitstream.header = header
      | Error _ -> false)

let () =
  Alcotest.run "bitgen"
    [ ("crc32", crc_tests);
      ("bitstream", bitstream_tests);
      ("repository", repository_tests);
      ("properties", [ QCheck_alcotest.to_alcotest prop_roundtrip ]) ]
