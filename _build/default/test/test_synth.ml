(* Tests for the deterministic RNG and the synthetic design generator
   (paper §V recipe). *)

module Rng = Synth.Rng
module Generator = Synth.Generator
module Design = Prdesign.Design
module Resource = Fpga.Resource

let rng_tests =
  [ Alcotest.test_case "deterministic for equal seeds" `Quick (fun () ->
        let a = Rng.make 7 and b = Rng.make 7 in
        for _ = 1 to 100 do
          Alcotest.(check int64) "same stream" (Rng.next a) (Rng.next b)
        done);
    Alcotest.test_case "different seeds differ" `Quick (fun () ->
        Alcotest.(check bool) "differ" true
          (Rng.next (Rng.make 1) <> Rng.next (Rng.make 2)));
    Alcotest.test_case "int stays in bounds" `Quick (fun () ->
        let rng = Rng.make 3 in
        for _ = 1 to 1000 do
          let v = Rng.int rng 17 in
          Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
        done);
    Alcotest.test_case "int rejects non-positive bound" `Quick (fun () ->
        let rng = Rng.make 3 in
        match Rng.int rng 0 with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    Alcotest.test_case "range inclusive" `Quick (fun () ->
        let rng = Rng.make 5 in
        let seen_lo = ref false and seen_hi = ref false in
        for _ = 1 to 2000 do
          let v = Rng.range rng 2 4 in
          Alcotest.(check bool) "2..4" true (v >= 2 && v <= 4);
          if v = 2 then seen_lo := true;
          if v = 4 then seen_hi := true
        done;
        Alcotest.(check bool) "hits lo" true !seen_lo;
        Alcotest.(check bool) "hits hi" true !seen_hi);
    Alcotest.test_case "range rejects empty" `Quick (fun () ->
        let rng = Rng.make 5 in
        match Rng.range rng 4 2 with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    Alcotest.test_case "float in [0,1)" `Quick (fun () ->
        let rng = Rng.make 11 in
        for _ = 1 to 1000 do
          let v = Rng.float rng in
          Alcotest.(check bool) "unit interval" true (v >= 0. && v < 1.)
        done);
    Alcotest.test_case "bool produces both values" `Quick (fun () ->
        let rng = Rng.make 13 in
        let t = ref false and f = ref false in
        for _ = 1 to 200 do
          if Rng.bool rng then t := true else f := true
        done;
        Alcotest.(check bool) "both" true (!t && !f));
    Alcotest.test_case "split streams are independent-ish" `Quick (fun () ->
        let parent = Rng.make 17 in
        let a = Rng.split parent and b = Rng.split parent in
        Alcotest.(check bool) "differ" true (Rng.next a <> Rng.next b));
    Alcotest.test_case "choose rejects empty" `Quick (fun () ->
        let rng = Rng.make 19 in
        match Rng.choose rng [||] with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    Alcotest.test_case "shuffle preserves multiset" `Quick (fun () ->
        let rng = Rng.make 23 in
        let arr = Array.init 50 Fun.id in
        Rng.shuffle rng arr;
        Alcotest.(check (list int)) "same elements"
          (List.init 50 Fun.id)
          (List.sort Int.compare (Array.to_list arr))) ]

let sample_designs =
  lazy (Generator.batch ~seed:2013 ~count:100 ())

let generator_tests =
  [ Alcotest.test_case "batch is deterministic" `Quick (fun () ->
        let a = Generator.batch ~seed:42 ~count:8 () in
        let b = Generator.batch ~seed:42 ~count:8 () in
        List.iter2
          (fun (_, da) (_, db) ->
            Alcotest.(check string) "same names" da.Design.name db.Design.name;
            Alcotest.(check bool) "same modes" true
              (List.for_all
                 (fun id ->
                   Resource.equal
                     (Design.mode_resources da id)
                     (Design.mode_resources db id))
                 (Design.all_mode_ids da)))
          a b);
    Alcotest.test_case "different seeds give different designs" `Quick
      (fun () ->
        let a = List.map snd (Generator.batch ~seed:1 ~count:4 ()) in
        let b = List.map snd (Generator.batch ~seed:2 ~count:4 ()) in
        Alcotest.(check bool) "some difference" true
          (List.exists2
             (fun da db ->
               Design.mode_count da <> Design.mode_count db
               || List.exists
                    (fun id ->
                      not
                        (Resource.equal
                           (Design.mode_resources da id)
                           (Design.mode_resources db id)))
                    (Design.all_mode_ids da))
             a b));
    Alcotest.test_case "classes interleave equally" `Quick (fun () ->
        let designs = Lazy.force sample_designs in
        List.iter
          (fun cls ->
            Alcotest.(check int)
              (Generator.class_name cls)
              25
              (List.length (List.filter (fun (c, _) -> c = cls) designs)))
          Generator.all_classes);
    Alcotest.test_case "module and mode counts within spec" `Quick (fun () ->
        List.iter
          (fun (_, d) ->
            let mc = Design.module_count d in
            Alcotest.(check bool) "2..6 modules" true (mc >= 2 && mc <= 6);
            Array.iter
              (fun m ->
                let k = Prdesign.Pmodule.mode_count m in
                Alcotest.(check bool) "2..4 modes" true (k >= 2 && k <= 4))
              d.Design.modules)
          (Lazy.force sample_designs));
    Alcotest.test_case "mode CLBs within 25..4000" `Quick (fun () ->
        List.iter
          (fun (_, d) ->
            List.iter
              (fun id ->
                let r = Design.mode_resources d id in
                Alcotest.(check bool) "clb range" true
                  (r.Resource.clb >= 25 && r.Resource.clb <= 4000))
              (Design.all_mode_ids d))
          (Lazy.force sample_designs));
    Alcotest.test_case "every mode used by some configuration" `Quick
      (fun () ->
        (* Guaranteed by Design.create validation, but assert explicitly:
           the generator never needs allow_unused_modes. *)
        List.iter
          (fun (_, d) ->
            let matrix = Prgraph.Conn_matrix.make d in
            List.iter
              (fun id ->
                Alcotest.(check bool) "used" true
                  (Prgraph.Conn_matrix.node_weight matrix id > 0))
              (Design.all_mode_ids d))
          (Lazy.force sample_designs));
    Alcotest.test_case "static overhead is 90 CLB + 8 BRAM" `Quick (fun () ->
        List.iter
          (fun (_, d) ->
            Alcotest.(check bool) "overhead" true
              (Resource.equal d.Design.static_overhead
                 (Resource.make ~bram:8 90)))
          (Lazy.force sample_designs));
    Alcotest.test_case "class shapes: memory designs carry BRAM" `Quick
      (fun () ->
        let designs = Lazy.force sample_designs in
        let mean_ratio cls pick =
          let values =
            List.filter_map
              (fun (c, d) ->
                if c <> cls then None
                else
                  Some
                    (List.fold_left
                       (fun acc id ->
                         let r = Design.mode_resources d id in
                         acc
                         +. (float_of_int (pick r)
                             /. float_of_int (max 1 r.Resource.clb)))
                       0.
                       (Design.all_mode_ids d)
                     /. float_of_int (Design.mode_count d)))
              designs
          in
          List.fold_left ( +. ) 0. values /. float_of_int (List.length values)
        in
        let bram (r : Resource.t) = r.Resource.bram in
        let dsp (r : Resource.t) = r.Resource.dsp in
        Alcotest.(check bool) "memory-heavy BRAM ratio" true
          (mean_ratio Generator.Memory_intensive bram
           > 3. *. mean_ratio Generator.Logic_intensive bram);
        Alcotest.(check bool) "dsp-heavy DSP ratio" true
          (mean_ratio Generator.Dsp_intensive dsp
           > 3. *. mean_ratio Generator.Logic_intensive dsp));
    Alcotest.test_case "every design fits some catalogued device" `Quick
      (fun () ->
        (* The generator's divisors are calibrated so the single-region
           lower bound fits the catalogue (DESIGN.md). *)
        let fitted =
          List.filter
            (fun (_, d) ->
              let need =
                Resource.add
                  (Fpga.Tile.quantize (Design.min_region_requirement d))
                  d.Design.static_overhead
              in
              Fpga.Device.smallest_fitting need <> None)
            (Lazy.force sample_designs)
        in
        Alcotest.(check int) "all fit" 100 (List.length fitted));
    Alcotest.test_case "configuration contents pairwise distinct" `Quick
      (fun () ->
        List.iter
          (fun (_, d) ->
            let contents =
              List.init (Design.configuration_count d)
                (Design.config_mode_ids d)
            in
            Alcotest.(check int) "distinct"
              (List.length contents)
              (List.length (List.sort_uniq compare contents)))
          (Lazy.force sample_designs)) ]

(* Property: generation never raises over a wide seed space. *)
let prop_generation_total =
  QCheck2.Test.make ~name:"generation succeeds for any seed" ~count:200
    QCheck2.Gen.(0 -- 1_000_000)
    (fun seed ->
      let d =
        Generator.generate (Rng.make seed) Generator.Dsp_memory_intensive
          ~index:seed
      in
      Design.configuration_count d >= 1 && Design.mode_count d >= 4)

let () =
  Alcotest.run "synth"
    [ ("rng", rng_tests);
      ("generator", generator_tests);
      ("properties", [ QCheck_alcotest.to_alcotest prop_generation_total ]) ]
