(* Tests for the graph substrate: connectivity matrix, weighted graph and
   clique detection, anchored on the paper's running example. *)

module Design_library = Prdesign.Design_library
module Conn_matrix = Prgraph.Conn_matrix
module Wgraph = Prgraph.Wgraph
module Clique = Prgraph.Clique

let example = Design_library.running_example
let matrix = Conn_matrix.make example

(* Mode ids in the running example: A1=0 A2=1 A3=2 B1=3 B2=4 C1=5 C2=6 C3=7. *)
let a1 = 0
and a2 = 1
and a3 = 2
and b1 = 3
and b2 = 4
and c1 = 5
and _c2 = 6
and c3 = 7

let matrix_tests =
  [ Alcotest.test_case "dimensions" `Quick (fun () ->
        Alcotest.(check int) "configs" 5 (Conn_matrix.configurations matrix);
        Alcotest.(check int) "modes" 8 (Conn_matrix.modes matrix));
    Alcotest.test_case "membership matches the paper's matrix" `Quick
      (fun () ->
        Alcotest.(check bool) "A3 in c1" true (Conn_matrix.mem matrix ~config:0 ~mode:a3);
        Alcotest.(check bool) "B2 in c1" true (Conn_matrix.mem matrix ~config:0 ~mode:b2);
        Alcotest.(check bool) "C3 in c1" true (Conn_matrix.mem matrix ~config:0 ~mode:c3);
        Alcotest.(check bool) "A1 not in c1" false
          (Conn_matrix.mem matrix ~config:0 ~mode:a1));
    Alcotest.test_case "node weights match the paper" `Quick (fun () ->
        Alcotest.(check int) "A1" 2 (Conn_matrix.node_weight matrix a1);
        Alcotest.(check int) "A2" 1 (Conn_matrix.node_weight matrix a2);
        Alcotest.(check int) "B2" 4 (Conn_matrix.node_weight matrix b2);
        Alcotest.(check int) "C1" 2 (Conn_matrix.node_weight matrix c1));
    Alcotest.test_case "edge weights match the paper" `Quick (fun () ->
        Alcotest.(check int) "A1-B1" 1 (Conn_matrix.edge_weight matrix a1 b1);
        Alcotest.(check int) "B2-C3" 2 (Conn_matrix.edge_weight matrix b2 c3);
        Alcotest.(check int) "A3-B2" 2 (Conn_matrix.edge_weight matrix a3 b2);
        Alcotest.(check int) "A1-A2 never co-occur" 0
          (Conn_matrix.edge_weight matrix a1 a2));
    Alcotest.test_case "edge weight on the diagonal is the node weight" `Quick
      (fun () ->
        Alcotest.(check int) "B2" 4 (Conn_matrix.edge_weight matrix b2 b2));
    Alcotest.test_case "support of sets" `Quick (fun () ->
        Alcotest.(check int) "triple c1" 1
          (Conn_matrix.support matrix [ a3; b2; c3 ]);
        Alcotest.(check int) "unsupported clique" 0
          (Conn_matrix.support matrix [ a1; b2; c1 ]);
        Alcotest.(check int) "empty set = all configs" 5
          (Conn_matrix.support matrix []));
    Alcotest.test_case "config_modes" `Quick (fun () ->
        Alcotest.(check (list int)) "conf2" [ a1; b1; c1 ]
          (Conn_matrix.config_modes matrix 1));
    Alcotest.test_case "active_modes excludes unused" `Quick (fun () ->
        let receiver = Conn_matrix.make Design_library.video_receiver in
        Alcotest.(check bool) "R4 inactive" false
          (List.mem 5 (Conn_matrix.active_modes receiver));
        Alcotest.(check int) "13 active of 14" 13
          (List.length (Conn_matrix.active_modes receiver)));
    Alcotest.test_case "out-of-range rejected" `Quick (fun () ->
        (match Conn_matrix.mem matrix ~config:99 ~mode:0 with
         | exception Invalid_argument _ -> ()
         | _ -> Alcotest.fail "config range");
        match Conn_matrix.node_weight matrix 99 with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "mode range") ]

let fresh_graph () =
  Wgraph.create ~n:8 ~weight:(fun i j -> Conn_matrix.edge_weight matrix i j)

let wgraph_tests =
  [ Alcotest.test_case "weights are symmetric samples" `Quick (fun () ->
        let g = fresh_graph () in
        Alcotest.(check int) "A3-B2" 2 (Wgraph.weight g a3 b2);
        Alcotest.(check int) "B2-A3" 2 (Wgraph.weight g b2 a3));
    Alcotest.test_case "link and linked" `Quick (fun () ->
        let g = fresh_graph () in
        Alcotest.(check bool) "initially unlinked" false (Wgraph.linked g a3 b2);
        Wgraph.link g a3 b2;
        Alcotest.(check bool) "linked" true (Wgraph.linked g a3 b2);
        Alcotest.(check bool) "symmetric" true (Wgraph.linked g b2 a3);
        Alcotest.(check int) "count" 1 (Wgraph.link_count g));
    Alcotest.test_case "double link rejected" `Quick (fun () ->
        let g = fresh_graph () in
        Wgraph.link g a3 b2;
        match Wgraph.link g b2 a3 with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    Alcotest.test_case "self loop rejected" `Quick (fun () ->
        let g = fresh_graph () in
        match Wgraph.link g a1 a1 with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    Alcotest.test_case "neighbours and common_neighbours" `Quick (fun () ->
        let g = fresh_graph () in
        Wgraph.link g a3 b2;
        Wgraph.link g a3 c3;
        Wgraph.link g b2 c3;
        Alcotest.(check (list int)) "neighbours of A3" [ b2; c3 ]
          (Wgraph.neighbours g a3);
        Alcotest.(check (list int)) "common of A3,B2" [ c3 ]
          (Wgraph.common_neighbours g a3 b2));
    Alcotest.test_case "is_clique" `Quick (fun () ->
        let g = fresh_graph () in
        Wgraph.link g a3 b2;
        Wgraph.link g a3 c3;
        Wgraph.link g b2 c3;
        Alcotest.(check bool) "triangle" true (Wgraph.is_clique g [ a3; b2; c3 ]);
        Alcotest.(check bool) "missing edge" false
          (Wgraph.is_clique g [ a3; b2; c1 ]);
        Alcotest.(check bool) "singleton" true (Wgraph.is_clique g [ a1 ]);
        Alcotest.(check bool) "empty" true (Wgraph.is_clique g []));
    Alcotest.test_case "min_internal_weight matches the paper" `Quick
      (fun () ->
        (* Paper Fig. 5(b): freq weight of {A3,B2,C3} is 1 via edge A3-C3. *)
        let g = fresh_graph () in
        Alcotest.(check int) "min edge" 1
          (Wgraph.min_internal_weight g [ a3; b2; c3 ]));
    Alcotest.test_case "min_internal_weight needs two nodes" `Quick (fun () ->
        let g = fresh_graph () in
        match Wgraph.min_internal_weight g [ a1 ] with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    Alcotest.test_case "positive_pairs_desc ordering" `Quick (fun () ->
        let g = fresh_graph () in
        let pairs = Wgraph.positive_pairs_desc g in
        Alcotest.(check int) "pair count" 13 (List.length pairs);
        (match pairs with
         | (i, j, w) :: _ ->
           Alcotest.(check int) "top weight" 2 w;
           Alcotest.(check bool) "i<j" true (i < j)
         | [] -> Alcotest.fail "no pairs");
        let weights = List.map (fun (_, _, w) -> w) pairs in
        let rec non_increasing = function
          | a :: (b :: _ as rest) -> a >= b && non_increasing rest
          | [ _ ] | [] -> true
        in
        Alcotest.(check bool) "sorted desc" true (non_increasing weights));
    Alcotest.test_case "negative weight rejected" `Quick (fun () ->
        match Wgraph.create ~n:2 ~weight:(fun _ _ -> -1) with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument") ]

let clique_tests =
  [ Alcotest.test_case "new cliques after one link" `Quick (fun () ->
        let g = fresh_graph () in
        Wgraph.link g a3 b2;
        Alcotest.(check (list (list int))) "pair only" [ [ a3; b2 ] ]
          (Clique.new_cliques_after_link g a3 b2));
    Alcotest.test_case "closing a triangle finds it" `Quick (fun () ->
        let g = fresh_graph () in
        Wgraph.link g a3 b2;
        Wgraph.link g a3 c3;
        let cliques = Clique.new_cliques_after_link g a3 c3 in
        Alcotest.(check bool) "pair" true (List.mem [ a3; c3 ] cliques);
        Wgraph.link g b2 c3;
        let cliques = Clique.new_cliques_after_link g b2 c3 in
        Alcotest.(check bool) "triangle found" true
          (List.mem [ a3; b2; c3 ] cliques);
        Alcotest.(check bool) "pair found" true (List.mem [ b2; c3 ] cliques));
    Alcotest.test_case "keep predicate prunes" `Quick (fun () ->
        let g = fresh_graph () in
        Wgraph.link g a3 b2;
        Wgraph.link g a3 c3;
        Wgraph.link g b2 c3;
        let cliques =
          Clique.new_cliques_after_link g b2 c3 ~keep:(fun s ->
              List.length s <= 2)
        in
        Alcotest.(check (list (list int))) "pairs only" [ [ b2; c3 ] ] cliques);
    Alcotest.test_case "unlinked nodes rejected" `Quick (fun () ->
        let g = fresh_graph () in
        match Clique.new_cliques_after_link g a1 b1 with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    Alcotest.test_case "limit truncates" `Quick (fun () ->
        let g = Wgraph.create ~n:5 ~weight:(fun _ _ -> 1) in
        let pairs = ref [] in
        for i = 0 to 4 do
          for j = i + 1 to 4 do
            pairs := (i, j) :: !pairs
          done
        done;
        List.iter (fun (i, j) -> Wgraph.link g i j) (List.rev !pairs);
        let last_i, last_j = List.hd !pairs in
        let cliques =
          Clique.new_cliques_after_link g last_i last_j ~limit:2
        in
        Alcotest.(check int) "limited" 2 (List.length cliques));
    Alcotest.test_case "maximal cliques of a triangle plus pendant" `Quick
      (fun () ->
        let g = Wgraph.create ~n:4 ~weight:(fun _ _ -> 1) in
        Wgraph.link g 0 1;
        Wgraph.link g 0 2;
        Wgraph.link g 1 2;
        Wgraph.link g 2 3;
        Alcotest.(check (list (list int))) "cliques"
          [ [ 0; 1; 2 ]; [ 2; 3 ] ]
          (Clique.maximal_cliques g));
    Alcotest.test_case "maximal cliques of empty graph are singletons" `Quick
      (fun () ->
        let g = Wgraph.create ~n:3 ~weight:(fun _ _ -> 0) in
        Alcotest.(check (list (list int))) "singletons" [ [ 0 ]; [ 1 ]; [ 2 ] ]
          (Clique.maximal_cliques g)) ]

(* Property: support is antitone in set inclusion. *)
let prop_support_antitone =
  let gen = QCheck2.Gen.(pair (list_size (1 -- 4) (0 -- 7)) (0 -- 7)) in
  QCheck2.Test.make ~name:"support antitone under extension" ~count:300 gen
    (fun (set, extra) ->
      let set = List.sort_uniq Int.compare set in
      let bigger = List.sort_uniq Int.compare (extra :: set) in
      Conn_matrix.support matrix bigger <= Conn_matrix.support matrix set)

(* Property: edge weight equals support of the pair. *)
let prop_edge_weight_is_pair_support =
  QCheck2.Test.make ~name:"edge weight = support of pair" ~count:300
    QCheck2.Gen.(pair (0 -- 7) (0 -- 7))
    (fun (i, j) ->
      i = j
      || Conn_matrix.edge_weight matrix i j
         = Conn_matrix.support matrix (List.sort_uniq Int.compare [ i; j ]))

(* Property: every maximal clique reported is in fact a clique, on random
   graphs. *)
let prop_maximal_cliques_are_cliques =
  let gen = QCheck2.Gen.(pair (2 -- 8) (0 -- 1000)) in
  QCheck2.Test.make ~name:"maximal cliques are cliques" ~count:100 gen
    (fun (n, seed) ->
      let g = Wgraph.create ~n ~weight:(fun _ _ -> 1) in
      let state = ref seed in
      let next () =
        state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
        !state
      in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          if next () mod 2 = 0 then Wgraph.link g i j
        done
      done;
      List.for_all (fun c -> Wgraph.is_clique g c) (Clique.maximal_cliques g))

let () =
  Alcotest.run "prgraph"
    [ ("conn-matrix", matrix_tests);
      ("wgraph", wgraph_tests);
      ("clique", clique_tests);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_support_antitone; prop_edge_weight_is_pair_support;
            prop_maximal_cliques_are_cliques ] ) ]
