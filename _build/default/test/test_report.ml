(* Tests for the reporting helpers: tables, histograms and statistics. *)

module Table = Report.Table
module Histogram = Report.Histogram
module Stats = Report.Stats

let lines s = String.split_on_char '\n' (String.trim s)

let table_tests =
  [ Alcotest.test_case "renders header, rule and rows" `Quick (fun () ->
        let s =
          Table.render ~headers:[ "name"; "value" ]
            [ [ "alpha"; "1" ]; [ "b"; "23" ] ]
        in
        Alcotest.(check int) "four lines" 4 (List.length (lines s)));
    Alcotest.test_case "columns are aligned" `Quick (fun () ->
        let s =
          Table.render ~headers:[ "n"; "v" ] [ [ "aaaa"; "1" ]; [ "b"; "22" ] ]
        in
        let widths = List.map String.length (lines s) in
        Alcotest.(check bool) "equal line widths" true
          (List.for_all (fun w -> w = List.hd widths) widths));
    Alcotest.test_case "default alignment: first left, rest right" `Quick
      (fun () ->
        let s = Table.render ~headers:[ "n"; "v" ] [ [ "x"; "1" ] ] in
        (match lines s with
         | [ _; _; row ] ->
           Alcotest.(check bool) "label left" true (row.[0] = 'x');
           Alcotest.(check bool) "number right" true
             (row.[String.length row - 1] = '1')
         | _ -> Alcotest.fail "unexpected shape"));
    Alcotest.test_case "short rows padded" `Quick (fun () ->
        let s = Table.render ~headers:[ "a"; "b"; "c" ] [ [ "x" ] ] in
        Alcotest.(check int) "rendered" 3 (List.length (lines s)));
    Alcotest.test_case "wide rows rejected" `Quick (fun () ->
        match Table.render ~headers:[ "a" ] [ [ "x"; "y" ] ] with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    Alcotest.test_case "aligns length validated" `Quick (fun () ->
        match Table.render ~aligns:[ Table.Left ] ~headers:[ "a"; "b" ] [] with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    Alcotest.test_case "of_ints and fixed" `Quick (fun () ->
        Alcotest.(check (list string)) "ints" [ "1"; "2" ] (Table.of_ints [ 1; 2 ]);
        Alcotest.(check string) "fixed" "3.14" (Table.fixed 2 3.14159)) ]

let histogram_tests =
  [ Alcotest.test_case "values land in the right buckets" `Quick (fun () ->
        let h =
          Histogram.make ~lo:0. ~hi:100. ~buckets:10
            [ 5.; 15.; 15.; 99.; 100. ]
        in
        Alcotest.(check int) "bucket 0" 1 h.Histogram.counts.(0);
        Alcotest.(check int) "bucket 1" 2 h.counts.(1);
        Alcotest.(check int) "last bucket (closed hi)" 2 h.counts.(9));
    Alcotest.test_case "under and overflow" `Quick (fun () ->
        let h = Histogram.make ~lo:0. ~hi:10. ~buckets:2 [ -1.; 11.; 5. ] in
        Alcotest.(check int) "under" 1 h.Histogram.underflow;
        Alcotest.(check int) "over" 1 h.overflow;
        Alcotest.(check int) "total" 3 (Histogram.total h));
    Alcotest.test_case "fig9 axis labels" `Quick (fun () ->
        let h = Histogram.make ~lo:(-10.) ~hi:100. ~buckets:11 [] in
        Alcotest.(check string) "first" "[-10, 0)" (Histogram.bucket_label h 0);
        Alcotest.(check string) "last" "[90, 100)" (Histogram.bucket_label h 10));
    Alcotest.test_case "label range checked" `Quick (fun () ->
        let h = Histogram.make ~lo:0. ~hi:1. ~buckets:1 [] in
        match Histogram.bucket_label h 5 with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    Alcotest.test_case "invalid parameters rejected" `Quick (fun () ->
        (match Histogram.make ~lo:0. ~hi:1. ~buckets:0 [] with
         | exception Invalid_argument _ -> ()
         | _ -> Alcotest.fail "buckets");
        match Histogram.make ~lo:1. ~hi:1. ~buckets:2 [] with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "range");
    Alcotest.test_case "render shows a line per bucket" `Quick (fun () ->
        let h = Histogram.make ~lo:0. ~hi:10. ~buckets:5 [ 1.; 2.; 3. ] in
        Alcotest.(check int) "five lines" 5
          (List.length (lines (Histogram.render h)))) ]

let stats_tests =
  [ Alcotest.test_case "mean" `Quick (fun () ->
        Alcotest.(check (float 1e-9)) "mean" 2. (Stats.mean [ 1.; 2.; 3. ]));
    Alcotest.test_case "median odd and even" `Quick (fun () ->
        Alcotest.(check (float 1e-9)) "odd" 2. (Stats.median [ 3.; 1.; 2. ]);
        Alcotest.(check (float 1e-9)) "even (lower)" 2.
          (Stats.median [ 4.; 1.; 2.; 3. ]));
    Alcotest.test_case "percentile nearest rank" `Quick (fun () ->
        let values = List.init 100 (fun i -> float_of_int (i + 1)) in
        Alcotest.(check (float 1e-9)) "p50" 50. (Stats.percentile 50. values);
        Alcotest.(check (float 1e-9)) "p100" 100. (Stats.percentile 100. values);
        Alcotest.(check (float 1e-9)) "p0" 1. (Stats.percentile 0. values));
    Alcotest.test_case "percentile bounds" `Quick (fun () ->
        match Stats.percentile 101. [ 1. ] with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    Alcotest.test_case "minimum and maximum" `Quick (fun () ->
        Alcotest.(check (float 1e-9)) "min" (-2.) (Stats.minimum [ 3.; -2.; 1. ]);
        Alcotest.(check (float 1e-9)) "max" 3. (Stats.maximum [ 3.; -2.; 1. ]));
    Alcotest.test_case "fraction" `Quick (fun () ->
        Alcotest.(check (float 1e-9)) "half" 0.5
          (Stats.fraction (fun x -> x > 0) [ 1; -1; 2; -2 ]);
        Alcotest.(check (float 1e-9)) "empty" 0.
          (Stats.fraction (fun _ -> true) []));
    Alcotest.test_case "geometric mean" `Quick (fun () ->
        Alcotest.(check (float 1e-9)) "gm" 2. (Stats.geometric_mean [ 1.; 4. ]);
        match Stats.geometric_mean [ 0.; 1. ] with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    Alcotest.test_case "empty lists rejected" `Quick (fun () ->
        let expect f =
          match f () with
          | exception Invalid_argument _ -> ()
          | _ -> Alcotest.fail "expected Invalid_argument"
        in
        expect (fun () -> Stats.mean []);
        expect (fun () -> Stats.median []);
        expect (fun () -> Stats.minimum []);
        expect (fun () -> Stats.maximum []);
        expect (fun () -> Stats.percentile 50. [])) ]

(* Properties. *)
let prop_histogram_conserves =
  QCheck2.Test.make ~name:"histogram conserves the value count" ~count:200
    QCheck2.Gen.(list (float_range (-50.) 150.))
    (fun values ->
      let h = Histogram.make ~lo:(-10.) ~hi:100. ~buckets:11 values in
      Histogram.total h = List.length values)

let prop_mean_between_min_max =
  QCheck2.Test.make ~name:"mean within [min, max]" ~count:200
    QCheck2.Gen.(list_size (1 -- 50) (float_range (-1000.) 1000.))
    (fun values ->
      let m = Stats.mean values in
      m >= Stats.minimum values -. 1e-9 && m <= Stats.maximum values +. 1e-9)

let prop_percentile_monotone =
  QCheck2.Test.make ~name:"percentile monotone in p" ~count:200
    QCheck2.Gen.(
      pair
        (list_size (1 -- 50) (float_range (-100.) 100.))
        (pair (float_range 0. 100.) (float_range 0. 100.)))
    (fun (values, (p1, p2)) ->
      let lo = min p1 p2 and hi = max p1 p2 in
      Stats.percentile lo values <= Stats.percentile hi values)

let () =
  Alcotest.run "report"
    [ ("table", table_tests);
      ("histogram", histogram_tests);
      ("stats", stats_tests);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_histogram_conserves; prop_mean_between_min_max;
            prop_percentile_monotone ] ) ]
