(* Tests for the HDL substrate: AST validation, the Verilog printer and
   wrapper generation. *)

module Ast = Hdl.Ast
module Wrapper = Hdl.Wrapper
module Design_library = Prdesign.Design_library
module Scheme = Prcore.Scheme

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i =
    if i + nn > nh then false
    else String.sub haystack i nn = needle || scan (i + 1)
  in
  scan 0

let count_occurrences haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i acc =
    if i + nn > nh then acc
    else if String.sub haystack i nn = needle then scan (i + nn) (acc + 1)
    else scan (i + 1) acc
  in
  if nn = 0 then 0 else scan 0 0

let simple_module =
  Ast.
    { name = "demo";
      ports =
        [ { port_name = "clk"; direction = Input; width = 1 };
          { port_name = "din"; direction = Input; width = 8 };
          { port_name = "dout"; direction = Output; width = 8 } ];
      items =
        [ Comment "a comment";
          Wire { wire_name = "tmp"; width = 8 };
          Assign { lhs = "tmp"; rhs = Id "din" };
          Assign { lhs = "dout"; rhs = Id "tmp" } ] }

let ast_tests =
  [ Alcotest.test_case "legal identifiers" `Quick (fun () ->
        Alcotest.(check bool) "plain" true (Ast.legal_identifier "foo_bar1");
        Alcotest.(check bool) "underscore start" true (Ast.legal_identifier "_x");
        Alcotest.(check bool) "digit start" false (Ast.legal_identifier "1x");
        Alcotest.(check bool) "empty" false (Ast.legal_identifier "");
        Alcotest.(check bool) "dot" false (Ast.legal_identifier "a.b"));
    Alcotest.test_case "mangle produces legal names" `Quick (fun () ->
        Alcotest.(check string) "dots" "F_Filter1" (Ast.mangle "F.Filter1");
        Alcotest.(check string) "braces" "_A3__B2_" (Ast.mangle "{A3, B2}");
        Alcotest.(check bool) "always legal" true
          (Ast.legal_identifier (Ast.mangle "9 bad # name")));
    Alcotest.test_case "validate accepts a good module" `Quick (fun () ->
        Alcotest.(check bool) "ok" true (Result.is_ok (Ast.validate simple_module)));
    Alcotest.test_case "validate rejects undeclared signals" `Quick (fun () ->
        let bad =
          { simple_module with
            items = [ Ast.Assign { lhs = "nope"; rhs = Ast.Id "din" } ] }
        in
        Alcotest.(check bool) "bad lhs" true (Result.is_error (Ast.validate bad)));
    Alcotest.test_case "validate rejects duplicate declarations" `Quick
      (fun () ->
        let bad =
          { simple_module with
            items =
              [ Ast.Wire { wire_name = "clk"; width = 1 } ] }
        in
        Alcotest.(check bool) "dup" true (Result.is_error (Ast.validate bad)));
    Alcotest.test_case "validate rejects zero widths" `Quick (fun () ->
        let bad =
          { simple_module with
            items = [ Ast.Wire { wire_name = "w"; width = 0 } ] }
        in
        Alcotest.(check bool) "width" true (Result.is_error (Ast.validate bad)));
    Alcotest.test_case "printer emits module/endmodule and ranges" `Quick
      (fun () ->
        let v = Ast.to_verilog simple_module in
        Alcotest.(check bool) "module" true (contains v "module demo (");
        Alcotest.(check bool) "endmodule" true (contains v "endmodule");
        Alcotest.(check bool) "range" true (contains v "[7:0] din");
        Alcotest.(check bool) "no range on 1-bit" false (contains v "[0:0]"));
    Alcotest.test_case "printer renders expressions" `Quick (fun () ->
        let m =
          Ast.
            { name = "exprs";
              ports =
                [ { port_name = "a"; direction = Input; width = 2 };
                  { port_name = "y"; direction = Output; width = 2 } ];
              items =
                [ Assign
                    { lhs = "y";
                      rhs =
                        Mux
                          ( Eq (Id "a", Literal { width = 2; value = 1 }),
                            Concat [ Select ("a", 0); Select ("a", 1) ],
                            Id "a" ) } ] }
        in
        let v = Ast.to_verilog m in
        Alcotest.(check bool) "mux" true
          (contains v "((a == 2'd1) ? {a[0], a[1]} : a)"));
    Alcotest.test_case "printer raises on invalid module" `Quick (fun () ->
        let bad = { simple_module with name = "1bad" } in
        match Ast.to_verilog bad with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument") ]

let receiver_scheme =
  lazy
    (match
       Prcore.Engine.solve
         ~target:(Prcore.Engine.Budget Design_library.case_study_budget)
         Design_library.video_receiver
     with
     | Ok o -> o.Prcore.Engine.scheme
     | Error m -> failwith m)

let wrapper_tests =
  [ Alcotest.test_case "mode stub carries the resource comment" `Quick
      (fun () ->
        let d = Design_library.video_receiver in
        let stub = Wrapper.mode_stub d 0 in
        let v = Ast.to_verilog stub in
        Alcotest.(check bool) "name" true (contains v "module F_Filter1");
        Alcotest.(check bool) "resources" true (contains v "818 CLBs"));
    Alcotest.test_case "variant chains its modes in order" `Quick (fun () ->
        let d = Design_library.running_example in
        (* Cluster {A3, B2, C3}: three chained instances. *)
        let bp =
          Cluster.Base_partition.make d ~modes:[ 2; 4; 7 ] ~freq:1
        in
        let v = Ast.to_verilog (Wrapper.variant_module d bp) in
        Alcotest.(check int) "three instances" 3 (count_occurrences v "u_");
        Alcotest.(check bool) "A3 before B2" true
          (String.index v 'u' >= 0
           && contains v "u_A3"
           && contains v "u_B2"
           && contains v "u_C3");
        (* Stage 0 feeds stage 1. *)
        Alcotest.(check bool) "chained" true (contains v ".s_data(stage0_data)"));
    Alcotest.test_case "single-mode variant still passes streams" `Quick
      (fun () ->
        let d = Design_library.running_example in
        let bp = Cluster.Base_partition.make d ~modes:[ 0 ] ~freq:2 in
        let v = Ast.to_verilog (Wrapper.variant_module d bp) in
        Alcotest.(check bool) "s_ready driven" true
          (contains v "assign s_ready = stage0_ready");
        Alcotest.(check bool) "m_data driven" true
          (contains v "assign m_data = stage0_data"));
    Alcotest.test_case "all generated modules validate" `Quick (fun () ->
        let scheme = Lazy.force receiver_scheme in
        (* emit_scheme itself calls to_verilog, which validates. *)
        let files = Wrapper.emit_scheme scheme in
        Alcotest.(check bool) "non-empty" true (List.length files > 0);
        List.iter
          (fun (name, content) ->
            Alcotest.(check bool) (name ^ " extension") true
              (Filename.check_suffix name ".v");
            Alcotest.(check int) (name ^ " one module") 1
              (count_occurrences content "\nendmodule"))
          files);
    Alcotest.test_case "emit_scheme filenames are unique" `Quick (fun () ->
        let files = Wrapper.emit_scheme (Lazy.force receiver_scheme) in
        let names = List.map fst files in
        Alcotest.(check int) "unique" (List.length names)
          (List.length (List.sort_uniq String.compare names)));
    Alcotest.test_case "emit_scheme covers stubs, variants, static, top"
      `Quick (fun () ->
        let scheme = Lazy.force receiver_scheme in
        let files = Wrapper.emit_scheme scheme in
        let names = List.map fst files in
        (* 13 used mode stubs + 13 variants + static + icap + top. *)
        Alcotest.(check bool) "has top" true
          (List.mem "video_receiver_top.v" names);
        Alcotest.(check bool) "has icap stub" true
          (List.mem "icap_controller.v" names);
        Alcotest.(check bool) "has static wrapper" true
          (List.mem "video_receiver_static.v" names);
        Alcotest.(check bool) "enough files" true (List.length files >= 28));
    Alcotest.test_case "top instantiates one variant per region" `Quick
      (fun () ->
        let scheme = Lazy.force receiver_scheme in
        let v = Ast.to_verilog (Wrapper.top_level scheme) in
        Alcotest.(check int) "region instances"
          scheme.Scheme.region_count
          (count_occurrences v "u_prr"));
    Alcotest.test_case "no static wrapper without statics" `Quick (fun () ->
        let d = Design_library.montone_example in
        let s = Scheme.one_module_per_region d in
        Alcotest.(check bool) "none" true (Wrapper.static_wrapper s = None)) ]

let () =
  Alcotest.run "hdl"
    [ ("ast", ast_tests); ("wrapper", wrapper_tests) ]
