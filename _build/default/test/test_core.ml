(* Tests for the core partitioner: covering, compatibility, schemes, the
   cost model (paper eqs. 7-11), the allocator and the engine. *)

module Design = Prdesign.Design
module Design_library = Prdesign.Design_library
module Base_partition = Cluster.Base_partition
module Agglomerative = Cluster.Agglomerative
module Covering = Prcore.Covering
module Compatibility = Prcore.Compatibility
module Scheme = Prcore.Scheme
module Cost = Prcore.Cost
module Allocator = Prcore.Allocator
module Engine = Prcore.Engine
module Resource = Fpga.Resource

let example = Design_library.running_example
let partitions = Agglomerative.run example
let res ?bram ?dsp clb = Resource.make ?bram ?dsp clb

(* Mode ids: A1=0 A2=1 A3=2 B1=3 B2=4 C1=5 C2=6 C3=7. *)
let singleton m =
  List.find
    (fun (p : Base_partition.t) -> p.modes = [ m ])
    partitions

let covering_tests =
  [ Alcotest.test_case "first candidate set is all singletons" `Quick
      (fun () ->
        (* The paper: the first candidate partition set is all the modes. *)
        match Covering.cover example partitions with
        | Some selected ->
          Alcotest.(check int) "eight partitions" 8 (List.length selected);
          Alcotest.(check bool) "all singletons" true
            (List.for_all
               (fun p -> Base_partition.cardinal p = 1)
               selected)
        | None -> Alcotest.fail "cover failed");
    Alcotest.test_case "removing the head pulls in a pair covering it" `Quick
      (fun () ->
        (* The paper removes the head singleton ({A2} in its ordering; {C2}
           in ours, which orders equal-frequency singletons by area) and
           re-covers: the removed mode must now come from a pair. *)
        let head_mode =
          match (List.hd partitions).Base_partition.modes with
          | [ m ] -> m
          | _ -> Alcotest.fail "head is not a singleton"
        in
        match Covering.cover example (List.tl partitions) with
        | Some selected ->
          let providers =
            List.filter (fun p -> Base_partition.mem head_mode p) selected
          in
          Alcotest.(check int) "one provider" 1 (List.length providers);
          Alcotest.(check bool) "it is a pair" true
            (Base_partition.cardinal (List.hd providers) = 2)
        | None -> Alcotest.fail "cover failed");
    Alcotest.test_case "uncoverable design returns None" `Quick (fun () ->
        (* Drop every partition containing mode A1. *)
        let partial =
          List.filter (fun p -> not (Base_partition.mem 0 p)) partitions
        in
        Alcotest.(check bool) "none" true
          (Covering.cover example partial = None));
    Alcotest.test_case "skips partitions that add nothing" `Quick (fun () ->
        (* With all singletons first, no pair ever covers a new mode. *)
        match Covering.cover example partitions with
        | Some selected ->
          Alcotest.(check bool) "no pairs selected" true
            (List.for_all (fun p -> Base_partition.cardinal p = 1) selected)
        | None -> Alcotest.fail "cover failed");
    Alcotest.test_case "candidate_sets are distinct and bounded" `Quick
      (fun () ->
        let sets = Covering.candidate_sets ~max_sets:10 example partitions in
        Alcotest.(check bool) "bounded" true (List.length sets <= 10);
        Alcotest.(check bool) "at least two" true (List.length sets >= 2);
        let keys =
          List.map
            (fun set -> List.map (fun (p : Base_partition.t) -> p.modes) set)
            sets
        in
        Alcotest.(check int) "distinct" (List.length keys)
          (List.length (List.sort_uniq compare keys)));
    Alcotest.test_case "every candidate set covers the design" `Quick
      (fun () ->
        List.iter
          (fun set ->
            let analysis =
              Compatibility.analyse example (Array.of_list set)
            in
            Alcotest.(check bool) "covers" true
              (Compatibility.covers_design analysis))
          (Covering.candidate_sets example partitions)) ]

let compatibility_tests =
  [ Alcotest.test_case "activity of singletons mirrors the matrix" `Quick
      (fun () ->
        let arr = Array.of_list (List.map singleton [ 0; 1; 2; 3; 4; 5; 6; 7 ]) in
        let analysis = Compatibility.analyse example arr in
        (* A1 (index 0 in arr) is in configurations 2 and 4 (conf2, conf4). *)
        Alcotest.(check (list int)) "A1 active" [ 1; 3 ]
          (Compatibility.active_configs analysis 0);
        Alcotest.(check (list int)) "B2 active" [ 0; 2; 3; 4 ]
          (Compatibility.active_configs analysis 4));
    Alcotest.test_case "same-module modes are compatible" `Quick (fun () ->
        let arr = Array.of_list (List.map singleton [ 0; 1; 2; 3; 4; 5; 6; 7 ]) in
        let analysis = Compatibility.analyse example arr in
        (* A1 and A2 never co-occur. *)
        Alcotest.(check bool) "A1/A2" true (Compatibility.compatible analysis 0 1));
    Alcotest.test_case "co-occurring modes are incompatible" `Quick (fun () ->
        let arr = Array.of_list (List.map singleton [ 0; 1; 2; 3; 4; 5; 6; 7 ]) in
        let analysis = Compatibility.analyse example arr in
        (* A1 and B1 share conf2. *)
        Alcotest.(check bool) "A1/B1" false
          (Compatibility.compatible analysis 0 3));
    Alcotest.test_case "self-compatibility only when inactive" `Quick
      (fun () ->
        let arr = Array.of_list (List.map singleton [ 0; 1; 2; 3; 4; 5; 6; 7 ]) in
        let analysis = Compatibility.analyse example arr in
        Alcotest.(check bool) "active bp not self-compatible" false
          (Compatibility.compatible analysis 0 0));
    Alcotest.test_case "greedy picks the best-covering cluster" `Quick
      (fun () ->
        (* Whole-configuration clusters: each config activates exactly its
           own cluster even though clusters overlap heavily. *)
        let matrix = Prgraph.Conn_matrix.make example in
        let clusters =
          List.init (Design.configuration_count example) (fun c ->
              let modes = Design.config_mode_ids example c in
              Base_partition.make example ~modes
                ~freq:(Prgraph.Conn_matrix.support matrix modes))
        in
        let analysis = Compatibility.analyse example (Array.of_list clusters) in
        for c = 0 to Design.configuration_count example - 1 do
          List.iteri
            (fun i _ ->
              Alcotest.(check bool)
                (Printf.sprintf "cluster %d active only in config %d" i c)
                (i = c)
                (Compatibility.active analysis ~bp:i ~config:c))
            clusters
        done);
    Alcotest.test_case "covers_design false for partial lists" `Quick
      (fun () ->
        let arr = Array.of_list [ singleton 0; singleton 4 ] in
        Alcotest.(check bool) "partial" false
          (Compatibility.covers_design (Compatibility.analyse example arr)));
    Alcotest.test_case "compatible_all over a group" `Quick (fun () ->
        let arr = Array.of_list (List.map singleton [ 0; 1; 2; 3; 4; 5; 6; 7 ]) in
        let analysis = Compatibility.analyse example arr in
        (* {A1,A2,A3} pairwise compatible (same module). *)
        Alcotest.(check bool) "A modes" true
          (Compatibility.compatible_all analysis [ 0; 1; 2 ]);
        Alcotest.(check bool) "A1,B1 conflict inside" false
          (Compatibility.compatible_all analysis [ 0; 1; 3 ])) ]

let all_separate () =
  (* One region per mode, regions numbered by flat mode id. *)
  Scheme.make_exn example
    (List.mapi (fun i m -> (singleton m, Scheme.Region i)) [ 0; 1; 2; 3; 4; 5; 6; 7 ])

let scheme_tests =
  [ Alcotest.test_case "all-separate scheme validates" `Quick (fun () ->
        let s = all_separate () in
        Alcotest.(check int) "regions" 8 s.Scheme.region_count);
    Alcotest.test_case "region area is the max over members" `Quick (fun () ->
        (* A2 (400 clb, 2 bram, 4 dsp) and B1 (350 clb, 3 bram, 6 dsp)
           never co-occur: sharing a region costs max per component. *)
        let s =
          (* A2 and B1 share region 0; everything else gets its own. *)
          let next = ref 0 in
          Scheme.make_exn example
            (List.map
               (fun m ->
                 let p = singleton m in
                 if m = 1 || m = 3 then (p, Scheme.Region 0)
                 else begin
                   incr next;
                   (p, Scheme.Region !next)
                 end)
               [ 0; 1; 2; 3; 4; 5; 6; 7 ])
        in
        Alcotest.(check bool) "region 0 = max(A2,B1)" true
          (Resource.equal
             (Scheme.region_resources s 0)
             (res 400 ~bram:3 ~dsp:6)));
    Alcotest.test_case "conflicting placement rejected" `Quick (fun () ->
        (* A1 and B1 co-occur in conf2: same region must be rejected. *)
        let assignment =
          let next = ref 0 in
          List.map
            (fun m ->
              let p = singleton m in
              if m = 0 || m = 3 then (p, Scheme.Region 0)
              else begin
                incr next;
                (p, Scheme.Region !next)
              end)
            [ 0; 1; 2; 3; 4; 5; 6; 7 ]
        in
        match Scheme.make example assignment with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected validation failure");
    Alcotest.test_case "empty region rejected" `Quick (fun () ->
        let assignment =
          List.mapi (fun i m -> (singleton m, Scheme.Region (i + 1)))
            [ 0; 1; 2; 3; 4; 5; 6; 7 ]
        in
        match Scheme.make example assignment with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected validation failure (region 0 empty)");
    Alcotest.test_case "uncovered design rejected" `Quick (fun () ->
        match Scheme.make example [ (singleton 0, Scheme.Region 0) ] with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected validation failure");
    Alcotest.test_case "static members and resources" `Quick (fun () ->
        let s =
          Scheme.make_exn example
            (List.mapi
               (fun i m ->
                 let p = singleton m in
                 if i < 2 then (p, Scheme.Static) else (p, Scheme.Region (i - 2)))
               [ 0; 1; 2; 3; 4; 5; 6; 7 ])
        in
        Alcotest.(check (list int)) "static" [ 0; 1 ] (Scheme.static_members s);
        (* A1 100 clb + A2 400 clb 2 bram 4 dsp + 2 dsp from A1. *)
        Alcotest.(check bool) "static sums" true
          (Resource.equal (Scheme.static_resources s) (res 500 ~bram:2 ~dsp:6)));
    Alcotest.test_case "active_partition reflects configurations" `Quick
      (fun () ->
        let s = all_separate () in
        (* Region 0 hosts {A1}; conf1 (index 0) uses A3, so region 0 idles. *)
        Alcotest.(check (option int)) "idle" None
          (Scheme.active_partition s ~config:0 ~region:0);
        Alcotest.(check (option int)) "active in conf2" (Some 0)
          (Scheme.active_partition s ~config:1 ~region:0));
    Alcotest.test_case "reconfigurable_resources are quantised sums" `Quick
      (fun () ->
        let s = all_separate () in
        let expected =
          List.fold_left
            (fun acc m ->
              Resource.add acc
                (Fpga.Tile.quantize (Design.mode_resources example m)))
            Resource.zero [ 0; 1; 2; 3; 4; 5; 6; 7 ]
        in
        Alcotest.(check bool) "sum" true
          (Resource.equal (Scheme.reconfigurable_resources s) expected)) ]

let reference_tests =
  [ Alcotest.test_case "single_region has one region" `Quick (fun () ->
        let s = Scheme.single_region example in
        Alcotest.(check int) "regions" 1 s.Scheme.region_count;
        Alcotest.(check int) "five clusters" 5 (Array.length s.Scheme.partitions));
    Alcotest.test_case "single_region area = largest configuration" `Quick
      (fun () ->
        let s = Scheme.single_region example in
        Alcotest.(check bool) "min region requirement" true
          (Resource.equal
             (Scheme.region_resources s 0)
             (Design.min_region_requirement example)));
    Alcotest.test_case "single_region: every transition reconfigures" `Quick
      (fun () ->
        let e = Cost.evaluate (Scheme.single_region example) in
        let configs = Design.configuration_count example in
        Alcotest.(check int) "conflicts = all pairs"
          (configs * (configs - 1) / 2)
          e.Cost.region_conflicts.(0);
        Alcotest.(check int) "worst = region frames"
          e.Cost.region_frames.(0) e.Cost.worst_frames);
    Alcotest.test_case "one_module_per_region groups by module" `Quick
      (fun () ->
        let s = Scheme.one_module_per_region example in
        Alcotest.(check int) "three regions" 3 s.Scheme.region_count;
        (* Region of module A sized for its largest mode A2. *)
        Alcotest.(check bool) "A region" true
          (Resource.equal (Scheme.region_resources s 0) (res 400 ~bram:2 ~dsp:4)));
    Alcotest.test_case "fully_static has zero cost and max area" `Quick
      (fun () ->
        let e = Cost.evaluate (Scheme.fully_static example) in
        Alcotest.(check int) "total" 0 e.Cost.total_frames;
        Alcotest.(check int) "worst" 0 e.Cost.worst_frames;
        Alcotest.(check bool) "area = static requirement" true
          (Resource.equal e.Cost.used (Design.static_requirement example)));
    Alcotest.test_case "duplicate configuration contents collapse" `Quick
      (fun () ->
        let d =
          Design.create_exn ~name:"dup"
            ~modules:
              [ Prdesign.Pmodule.make "A"
                  [ Prdesign.Mode.make "a1" (res 10);
                    Prdesign.Mode.make "a2" (res 20) ] ]
            ~configurations:
              [ Prdesign.Configuration.make "c1" [ (0, 0) ];
                Prdesign.Configuration.make "c2" [ (0, 1) ];
                Prdesign.Configuration.make "c3" [ (0, 0) ] ]
            ()
        in
        let s = Scheme.single_region d in
        Alcotest.(check int) "two clusters" 2 (Array.length s.Scheme.partitions))
  ]

let cost_tests =
  [ Alcotest.test_case "all-separate scheme costs zero" `Quick (fun () ->
        (* The paper: one base partition per region is equivalent to the
           static implementation - minimum reconfiguration time. *)
        let e = Cost.evaluate (all_separate ()) in
        Alcotest.(check int) "total" 0 e.Cost.total_frames;
        Alcotest.(check int) "worst" 0 e.Cost.worst_frames);
    Alcotest.test_case "total = sum of region frames x conflicts" `Quick
      (fun () ->
        let s = Scheme.one_module_per_region example in
        let e = Cost.evaluate s in
        let manual = ref 0 in
        Array.iteri
          (fun r f -> manual := !manual + (f * e.Cost.region_conflicts.(r)))
          e.Cost.region_frames;
        Alcotest.(check int) "decomposition" !manual e.Cost.total_frames);
    Alcotest.test_case "total = sum of pairwise transitions" `Quick (fun () ->
        let s = Scheme.one_module_per_region example in
        let e = Cost.evaluate s in
        let configs = Design.configuration_count example in
        let total = ref 0 in
        for i = 0 to configs - 1 do
          for j = i + 1 to configs - 1 do
            total := !total + Cost.pairwise_frames s i j
          done
        done;
        Alcotest.(check int) "eq 7/10" !total e.Cost.total_frames);
    Alcotest.test_case "worst = max pairwise transition" `Quick (fun () ->
        let s = Scheme.one_module_per_region example in
        let e = Cost.evaluate s in
        let configs = Design.configuration_count example in
        let worst = ref 0 in
        for i = 0 to configs - 1 do
          for j = i + 1 to configs - 1 do
            worst := max !worst (Cost.pairwise_frames s i j)
          done
        done;
        Alcotest.(check int) "eq 11" !worst e.Cost.worst_frames);
    Alcotest.test_case "transition matrix symmetric, zero diagonal" `Quick
      (fun () ->
        let s = Scheme.one_module_per_region example in
        let m = Cost.transition_matrix s in
        Array.iteri
          (fun i row ->
            Alcotest.(check int) "diag" 0 row.(i);
            Array.iteri
              (fun j v -> Alcotest.(check int) "symmetric" v m.(j).(i))
              row)
          m);
    Alcotest.test_case "don't-care regions cost nothing" `Quick (fun () ->
        (* Montone example: two disjoint configurations. One module per
           region means every region idles in one of the two configs, so
           pairwise cost counts no region at all. *)
        let d = Design_library.montone_example in
        let e = Cost.evaluate (Scheme.one_module_per_region d) in
        Alcotest.(check int) "no required reconfigurations" 0
          e.Cost.total_frames);
    Alcotest.test_case "fits compares against a budget" `Quick (fun () ->
        let e = Cost.evaluate (Scheme.one_module_per_region example) in
        Alcotest.(check bool) "big budget" true
          (Cost.fits e ~budget:(res 100_000 ~bram:1000 ~dsp:1000));
        Alcotest.(check bool) "tiny budget" false
          (Cost.fits e ~budget:(res 10)));
    Alcotest.test_case "pairwise range checked" `Quick (fun () ->
        let s = Scheme.single_region example in
        match Cost.pairwise_frames s 0 99 with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument") ]

let big_budget = res 100_000 ~bram:1_000 ~dsp:1_000

let allocator_tests =
  [ Alcotest.test_case "loose budget keeps everything separate" `Quick
      (fun () ->
        let singles =
          List.filter (fun p -> Base_partition.cardinal p = 1) partitions
        in
        match Allocator.allocate ~budget:big_budget example singles with
        | Some s ->
          let e = Cost.evaluate s in
          Alcotest.(check int) "zero time" 0 e.Cost.total_frames
        | None -> Alcotest.fail "expected a scheme");
    Alcotest.test_case "tight budget forces merging but stays feasible"
      `Quick (fun () ->
        let singles =
          List.filter (fun p -> Base_partition.cardinal p = 1) partitions
        in
        let budget = res 1400 ~bram:16 ~dsp:32 in
        match Allocator.allocate ~budget example singles with
        | Some s ->
          let e = Cost.evaluate s in
          Alcotest.(check bool) "fits" true (Cost.fits e ~budget)
        | None -> Alcotest.fail "expected a scheme");
    Alcotest.test_case "impossible budget returns None" `Quick (fun () ->
        let singles =
          List.filter (fun p -> Base_partition.cardinal p = 1) partitions
        in
        Alcotest.(check bool) "none" true
          (Allocator.allocate ~budget:(res 100) example singles = None));
    Alcotest.test_case "uncovering candidate set returns None" `Quick
      (fun () ->
        Alcotest.(check bool) "none" true
          (Allocator.allocate ~budget:big_budget example [ singleton 0 ] = None));
    Alcotest.test_case "empty candidate set returns None" `Quick (fun () ->
        Alcotest.(check bool) "none" true
          (Allocator.allocate ~budget:big_budget example [] = None));
    Alcotest.test_case "no-promotion option keeps static empty" `Quick
      (fun () ->
        let singles =
          List.filter (fun p -> Base_partition.cardinal p = 1) partitions
        in
        let options = { Allocator.default_options with promote_static = false } in
        let budget = res 1400 ~bram:16 ~dsp:32 in
        match Allocator.allocate ~options ~budget example singles with
        | Some s ->
          Alcotest.(check (list int)) "no statics" [] (Scheme.static_members s)
        | None -> ());
    Alcotest.test_case "restarts never hurt" `Quick (fun () ->
        let singles =
          List.filter (fun p -> Base_partition.cardinal p = 1) partitions
        in
        let budget = res 1350 ~bram:16 ~dsp:32 in
        let total options =
          match Allocator.allocate ~options ~budget example singles with
          | Some s -> (Cost.evaluate s).Cost.total_frames
          | None -> max_int
        in
        let without = total { Allocator.default_options with max_restarts = 0 } in
        let with_r = total { Allocator.default_options with max_restarts = 12 } in
        Alcotest.(check bool) "restarts <= greedy" true (with_r <= without)) ]

let engine_tests =
  [ Alcotest.test_case "budget too small even for single region" `Quick
      (fun () ->
        match Engine.solve ~target:(Engine.Budget (res 50)) example with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected infeasibility");
    Alcotest.test_case "huge budget gives zero reconfiguration time" `Quick
      (fun () ->
        match Engine.solve ~target:(Engine.Budget big_budget) example with
        | Ok o ->
          Alcotest.(check int) "zero" 0 o.Engine.evaluation.Cost.total_frames
        | Error m -> Alcotest.fail m);
    Alcotest.test_case "result always fits the budget" `Quick (fun () ->
        List.iter
          (fun budget ->
            match Engine.solve ~target:(Engine.Budget budget) example with
            | Ok o ->
              Alcotest.(check bool) "fits" true
                (Cost.fits o.Engine.evaluation ~budget)
            | Error _ -> ())
          [ res 700 ~bram:4 ~dsp:8;
            res 1000 ~bram:6 ~dsp:10;
            res 1500 ~bram:10 ~dsp:16 ]);
    Alcotest.test_case "proposed never worse than single region" `Quick
      (fun () ->
        let single = (Cost.evaluate (Scheme.single_region example)).Cost.total_frames in
        List.iter
          (fun budget ->
            match Engine.solve ~target:(Engine.Budget budget) example with
            | Ok o ->
              Alcotest.(check bool) "<= single region" true
                (o.Engine.evaluation.Cost.total_frames <= single)
            | Error _ -> ())
          [ res 700 ~bram:4 ~dsp:8; res 900 ~bram:8 ~dsp:16 ]);
    Alcotest.test_case "fixed device target" `Quick (fun () ->
        let device = Fpga.Device.find_exn "LX30" in
        match Engine.solve ~target:(Engine.Fixed device) example with
        | Ok o ->
          (match o.Engine.device with
           | Some d -> Alcotest.(check string) "device" "LX30" d.Fpga.Device.short
           | None -> Alcotest.fail "device missing");
          Alcotest.(check bool) "budget = device resources" true
            (Resource.equal o.Engine.budget (Fpga.Device.resources device))
        | Error m -> Alcotest.fail m);
    Alcotest.test_case "auto picks a device and solves" `Quick (fun () ->
        match Engine.solve ~target:Engine.Auto example with
        | Ok o ->
          Alcotest.(check bool) "device set" true (o.Engine.device <> None);
          Alcotest.(check bool) "fits" true
            (Cost.fits o.Engine.evaluation ~budget:o.Engine.budget)
        | Error m -> Alcotest.fail m);
    Alcotest.test_case "auto rejects monster designs" `Quick (fun () ->
        let d =
          Design.create_exn ~name:"monster"
            ~modules:
              [ Prdesign.Pmodule.make "A"
                  [ Prdesign.Mode.make "a" (res 1_000_000) ] ]
            ~configurations:[ Prdesign.Configuration.make "c" [ (0, 0) ] ]
            ()
        in
        match Engine.solve ~target:Engine.Auto d with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected infeasibility");
    Alcotest.test_case "is_single_region_like" `Quick (fun () ->
        Alcotest.(check bool) "single" true
          (Engine.is_single_region_like (Scheme.single_region example));
        Alcotest.(check bool) "modular" false
          (Engine.is_single_region_like (Scheme.one_module_per_region example)));
    Alcotest.test_case "min-edge rule also solves the case study" `Quick
      (fun () ->
        let options =
          { Engine.default_options with freq_rule = Agglomerative.Min_edge }
        in
        match
          Engine.solve ~options
            ~target:(Engine.Budget Design_library.case_study_budget)
            Design_library.video_receiver
        with
        | Ok o ->
          Alcotest.(check bool) "fits" true
            (Cost.fits o.Engine.evaluation
               ~budget:Design_library.case_study_budget)
        | Error m -> Alcotest.fail m) ]

(* Paper-anchored end-to-end numbers (see EXPERIMENTS.md). *)
let case_study_tests =
  [ Alcotest.test_case "receiver beats modular by a few percent" `Quick
      (fun () ->
        let d = Design_library.video_receiver in
        let budget = Design_library.case_study_budget in
        match Engine.solve ~target:(Engine.Budget budget) d with
        | Ok o ->
          let modular =
            (Cost.evaluate (Scheme.one_module_per_region d)).Cost.total_frames
          in
          let proposed = o.Engine.evaluation.Cost.total_frames in
          Alcotest.(check bool) "strictly better" true (proposed < modular);
          let gain =
            100. *. float_of_int (modular - proposed) /. float_of_int modular
          in
          Alcotest.(check bool) "2%..15% (paper: 4%)" true
            (gain > 2. && gain < 15.)
        | Error m -> Alcotest.fail m);
    Alcotest.test_case "alt receiver beats modular (paper: 6%)" `Quick
      (fun () ->
        let d = Design_library.video_receiver_alt in
        let budget = Design_library.case_study_budget in
        match Engine.solve ~target:(Engine.Budget budget) d with
        | Ok o ->
          let modular =
            (Cost.evaluate (Scheme.one_module_per_region d)).Cost.total_frames
          in
          Alcotest.(check bool) "strictly better" true
            (o.Engine.evaluation.Cost.total_frames < modular)
        | Error m -> Alcotest.fail m);
    Alcotest.test_case "receiver modular total within 5% of paper's 244872"
      `Quick (fun () ->
        let d = Design_library.video_receiver in
        let total =
          (Cost.evaluate (Scheme.one_module_per_region d)).Cost.total_frames
        in
        let err =
          Float.abs (float_of_int total -. 244_872.) /. 244_872.
        in
        Alcotest.(check bool) "close to paper" true (err < 0.05)) ]

(* Properties on synthetic designs: the engine's output is always valid. *)
let gen_seed = QCheck2.Gen.(0 -- 5_000)

let synth_design seed =
  Synth.Generator.generate (Synth.Rng.make seed)
    Synth.Generator.Dsp_memory_intensive ~index:seed

let prop_engine_fits =
  QCheck2.Test.make ~name:"auto solve fits its device" ~count:40 gen_seed
    (fun seed ->
      match Engine.solve ~target:Engine.Auto (synth_design seed) with
      | Ok o -> Cost.fits o.Engine.evaluation ~budget:o.Engine.budget
      | Error _ -> QCheck2.assume_fail ())

let prop_engine_beats_single =
  QCheck2.Test.make ~name:"auto solve <= single region total" ~count:40
    gen_seed (fun seed ->
      let d = synth_design seed in
      match Engine.solve ~target:Engine.Auto d with
      | Ok o ->
        o.Engine.evaluation.Cost.total_frames
        <= (Cost.evaluate (Scheme.single_region d)).Cost.total_frames
      | Error _ -> QCheck2.assume_fail ())

let prop_scheme_valid_by_construction =
  QCheck2.Test.make ~name:"engine scheme revalidates" ~count:40 gen_seed
    (fun seed ->
      let d = synth_design seed in
      match Engine.solve ~target:Engine.Auto d with
      | Ok o ->
        let s = o.Engine.scheme in
        let assignment =
          List.mapi
            (fun i bp -> (bp, s.Scheme.placement.(i)))
            (Array.to_list s.Scheme.partitions)
        in
        Result.is_ok (Scheme.make d assignment)
      | Error _ -> QCheck2.assume_fail ())

let () =
  Alcotest.run "core"
    [ ("covering", covering_tests);
      ("compatibility", compatibility_tests);
      ("scheme", scheme_tests);
      ("references", reference_tests);
      ("cost", cost_tests);
      ("allocator", allocator_tests);
      ("engine", engine_tests);
      ("case-study", case_study_tests);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_engine_fits; prop_engine_beats_single;
            prop_scheme_valid_by_construction ] ) ]
