(* Tests for the runtime substrate: transition tables and the stateful
   configuration-manager simulation. *)

module Design = Prdesign.Design
module Design_library = Prdesign.Design_library
module Scheme = Prcore.Scheme
module Cost = Prcore.Cost
module Transition = Runtime.Transition
module Manager = Runtime.Manager

let example = Design_library.running_example
let modular = Scheme.one_module_per_region example
let single = Scheme.single_region example

let transition_tests =
  [ Alcotest.test_case "matrix agrees with the cost model" `Quick (fun () ->
        let t = Transition.make modular in
        let configs = Design.configuration_count example in
        for i = 0 to configs - 1 do
          for j = 0 to configs - 1 do
            Alcotest.(check int) "entry"
              (if i = j then 0 else Cost.pairwise_frames modular i j)
              (Transition.frames t i j)
          done
        done);
    Alcotest.test_case "total matches evaluation" `Quick (fun () ->
        let t = Transition.make modular in
        Alcotest.(check int) "total"
          (Cost.evaluate modular).Cost.total_frames
          (Transition.total_frames t));
    Alcotest.test_case "worst matches evaluation" `Quick (fun () ->
        let t = Transition.make modular in
        match Transition.worst t with
        | Some (_, _, frames) ->
          Alcotest.(check int) "worst"
            (Cost.evaluate modular).Cost.worst_frames frames
        | None -> Alcotest.fail "expected a worst transition");
    Alcotest.test_case "seconds consistent with icap model" `Quick (fun () ->
        let icap = Fpga.Icap.default in
        let t = Transition.make ~icap modular in
        Alcotest.(check (float 1e-12)) "seconds"
          (Fpga.Icap.seconds_of_frames icap (Transition.frames t 0 1))
          (Transition.seconds t 0 1));
    Alcotest.test_case "index range checked" `Quick (fun () ->
        let t = Transition.make modular in
        match Transition.frames t 0 99 with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument") ]

let manager_tests =
  [ Alcotest.test_case "empty sequence has zero stats" `Quick (fun () ->
        let stats = Manager.simulate modular ~initial:0 ~sequence:[] in
        Alcotest.(check int) "steps" 0 stats.Manager.steps;
        Alcotest.(check int) "frames" 0 stats.total_frames);
    Alcotest.test_case "self-transition costs nothing" `Quick (fun () ->
        let stats = Manager.simulate modular ~initial:0 ~sequence:[ 0; 0; 0 ] in
        Alcotest.(check int) "steps" 3 stats.Manager.steps;
        Alcotest.(check int) "transitions" 0 stats.transitions;
        Alcotest.(check int) "frames" 0 stats.total_frames);
    Alcotest.test_case "single hop equals the pairwise cost" `Quick (fun () ->
        (* From a fresh initial configuration, one hop writes exactly the
           pairwise transition frames. *)
        let stats = Manager.simulate modular ~initial:0 ~sequence:[ 1 ] in
        Alcotest.(check int) "frames" (Cost.pairwise_frames modular 0 1)
          stats.Manager.total_frames);
    Alcotest.test_case "don't-care regions retain content" `Quick (fun () ->
        (* Montone design: hopping between the two disjoint configurations
           never reconfigures a one-module-per-region layout. *)
        let d = Design_library.montone_example in
        let s = Scheme.one_module_per_region d in
        let stats =
          Manager.simulate s ~initial:0 ~sequence:[ 1; 0; 1; 0; 1 ]
        in
        Alcotest.(check int) "zero frames" 0 stats.Manager.total_frames);
    Alcotest.test_case "single region reconfigures on every change" `Quick
      (fun () ->
        let frames = Scheme.region_frames single 0 in
        let stats =
          Manager.simulate single ~initial:0 ~sequence:[ 1; 2; 3; 4; 0 ]
        in
        Alcotest.(check int) "5 reloads" (5 * frames) stats.Manager.total_frames;
        Alcotest.(check int) "region loads" 5 stats.region_loads.(0));
    Alcotest.test_case "walk cost never exceeds pairwise proxy" `Quick
      (fun () ->
        (* Holds for the running example because every module is present
           in every configuration, so regions are never idle and the
           symmetric pairwise rule equals the directional one. For designs
           with absent modules only the directional rule is an upper
           bound (see test_properties.ml). *)
        let rng = Synth.Rng.make 5 in
        let sequence =
          Manager.random_walk
            ~rand:(fun n -> Synth.Rng.int rng n)
            ~configs:(Design.configuration_count example)
            ~steps:500 ~initial:0
        in
        let stats = Manager.simulate modular ~initial:0 ~sequence in
        let proxy = ref 0 in
        let prev = ref 0 in
        List.iter
          (fun c ->
            proxy := !proxy + Cost.pairwise_frames modular !prev c;
            prev := c)
          sequence;
        Alcotest.(check bool) "simulated <= proxy" true
          (stats.Manager.total_frames <= !proxy));
    Alcotest.test_case "max and mean are consistent" `Quick (fun () ->
        let stats =
          Manager.simulate modular ~initial:0 ~sequence:[ 1; 2; 3; 0; 4 ]
        in
        Alcotest.(check bool) "mean <= max" true
          (stats.Manager.mean_frames <= float_of_int stats.max_frames);
        Alcotest.(check bool) "total = sum" true
          (stats.total_frames
           <= stats.transitions * stats.max_frames));
    Alcotest.test_case "trace observes every step" `Quick (fun () ->
        let events = ref [] in
        let (_ : Manager.stats) =
          Manager.simulate modular ~initial:0 ~sequence:[ 1; 1; 2 ]
            ~trace:(fun e -> events := e :: !events)
        in
        Alcotest.(check int) "three events" 3 (List.length !events);
        let steps = List.rev_map (fun e -> e.Manager.step) !events in
        Alcotest.(check (list int)) "numbered" [ 1; 2; 3 ] steps);
    Alcotest.test_case "icap overhead counted per reconfiguration" `Quick
      (fun () ->
        let icap = Fpga.Icap.make ~overhead_s:1e-3 () in
        let stats =
          Manager.simulate ~icap single ~initial:0 ~sequence:[ 1; 2 ]
        in
        Alcotest.(check bool) "at least 2 ms of overhead" true
          (stats.Manager.total_seconds >= 2e-3));
    Alcotest.test_case "out-of-range configuration rejected" `Quick (fun () ->
        match Manager.simulate modular ~initial:0 ~sequence:[ 99 ] with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument") ]

let walk_tests =
  [ Alcotest.test_case "random_walk length and range" `Quick (fun () ->
        let rng = Synth.Rng.make 9 in
        let walk =
          Manager.random_walk
            ~rand:(fun n -> Synth.Rng.int rng n)
            ~configs:5 ~steps:200 ~initial:0
        in
        Alcotest.(check int) "length" 200 (List.length walk);
        Alcotest.(check bool) "range" true
          (List.for_all (fun c -> c >= 0 && c < 5) walk));
    Alcotest.test_case "random_walk avoids self transitions" `Quick (fun () ->
        let rng = Synth.Rng.make 10 in
        let walk =
          Manager.random_walk
            ~rand:(fun n -> Synth.Rng.int rng n)
            ~configs:3 ~steps:100 ~initial:0
        in
        let rec no_repeat prev = function
          | [] -> true
          | c :: rest -> c <> prev && no_repeat c rest
        in
        Alcotest.(check bool) "no self hop" true (no_repeat 0 walk));
    Alcotest.test_case "random_walk needs two configurations" `Quick
      (fun () ->
        match
          Manager.random_walk ~rand:(fun _ -> 0) ~configs:1 ~steps:5 ~initial:0
        with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument") ]

(* Property: simulated walks on engine outputs are cheaper than on the
   single-region scheme (whole-region reloads dominate). *)
let prop_walk_proposed_beats_single =
  QCheck2.Test.make ~name:"walk: proposed <= single region" ~count:25
    QCheck2.Gen.(0 -- 2_000)
    (fun seed ->
      let d =
        Synth.Generator.generate (Synth.Rng.make seed)
          Synth.Generator.Logic_intensive ~index:seed
      in
      if Design.configuration_count d < 2 then true
      else
        match Prcore.Engine.solve ~target:Prcore.Engine.Auto d with
        | Error _ -> QCheck2.assume_fail ()
        | Ok o ->
          let rng = Synth.Rng.make (seed + 1) in
          let sequence =
            Manager.random_walk
              ~rand:(fun n -> Synth.Rng.int rng n)
              ~configs:(Design.configuration_count d)
              ~steps:300 ~initial:0
          in
          let proposed =
            (Manager.simulate o.Prcore.Engine.scheme ~initial:0 ~sequence)
              .Manager.total_frames
          in
          let single =
            (Manager.simulate (Scheme.single_region d) ~initial:0 ~sequence)
              .Manager.total_frames
          in
          proposed <= single)


let markov_tests =
  [ Alcotest.test_case "uniform chain is row-stochastic, no self loops" `Quick
      (fun () ->
        let chain = Runtime.Markov.uniform ~configs:4 in
        for i = 0 to 3 do
          let sum = ref 0. in
          for j = 0 to 3 do
            sum := !sum +. Runtime.Markov.probability chain ~from:i ~into:j
          done;
          Alcotest.(check (float 1e-9)) "row sum" 1. !sum;
          Alcotest.(check (float 1e-12)) "diagonal" 0.
            (Runtime.Markov.probability chain ~from:i ~into:i)
        done);
    Alcotest.test_case "make validates" `Quick (fun () ->
        Alcotest.(check bool) "bad sum" true
          (Result.is_error (Runtime.Markov.make [| [| 0.5; 0.4 |]; [| 0.5; 0.5 |] |]));
        Alcotest.(check bool) "negative" true
          (Result.is_error (Runtime.Markov.make [| [| 1.5; -0.5 |]; [| 0.5; 0.5 |] |]));
        Alcotest.(check bool) "ragged" true
          (Result.is_error (Runtime.Markov.make [| [| 1. |]; [| 0.5; 0.5 |] |]));
        Alcotest.(check bool) "good" true
          (Result.is_ok (Runtime.Markov.make [| [| 0.; 1. |]; [| 1.; 0. |] |])));
    Alcotest.test_case "stationary of uniform chain is uniform" `Quick
      (fun () ->
        let pi = Runtime.Markov.stationary (Runtime.Markov.uniform ~configs:5) in
        Array.iter
          (fun p -> Alcotest.(check (float 1e-9)) "1/5" 0.2 p)
          pi);
    Alcotest.test_case "stationary of a biased chain favours the sink" `Quick
      (fun () ->
        let chain =
          Runtime.Markov.make_exn
            [| [| 0.; 1. |]; [| 0.9; 0.1 |] |]
        in
        let pi = Runtime.Markov.stationary chain in
        (* Solves pi = pi P: pi0 = 0.9 pi1 / (pi0+pi1=1). *)
        Alcotest.(check bool) "state 1 heavier" true (pi.(1) > pi.(0)));
    Alcotest.test_case "edge rates sum to the change probability" `Quick
      (fun () ->
        let rng = Synth.Rng.make 4 in
        let chain =
          Runtime.Markov.random ~rand:(fun () -> Synth.Rng.float rng)
            ~configs:6 ()
        in
        let rates = Runtime.Markov.edge_rates chain in
        let total = Array.fold_left (Array.fold_left ( +. )) 0. rates in
        (* No self transitions in random chains: every step changes. *)
        Alcotest.(check (float 1e-6)) "sums to 1" 1. total);
    Alcotest.test_case "expected frames match a long simulated walk" `Quick
      (fun () ->
        let scheme = modular in
        let configs = Design.configuration_count example in
        let chain = Runtime.Markov.uniform ~configs in
        let transition = Runtime.Transition.make scheme in
        let expected =
          Runtime.Markov.expected_frames_per_step chain
            ~frames:(Runtime.Transition.frames transition)
        in
        let rng = Synth.Rng.make 123 in
        let sequence =
          Manager.random_walk
            ~rand:(fun n -> Synth.Rng.int rng n)
            ~configs ~steps:30_000 ~initial:0
        in
        let stats = Manager.simulate scheme ~initial:0 ~sequence in
        let measured =
          float_of_int stats.Manager.total_frames /. 30_000.
        in
        (* The stateful walk can only do better or equal; for this scheme
           the two agree within a few percent. *)
        Alcotest.(check bool) "within 10%" true
          (Float.abs (measured -. expected) /. expected < 0.10));
    Alcotest.test_case "random chain is deterministic in its stream" `Quick
      (fun () ->
        let make seed =
          let rng = Synth.Rng.make seed in
          Runtime.Markov.random ~rand:(fun () -> Synth.Rng.float rng)
            ~configs:4 ()
        in
        let a = make 9 and b = make 9 in
        for i = 0 to 3 do
          for j = 0 to 3 do
            Alcotest.(check (float 0.)) "equal"
              (Runtime.Markov.probability a ~from:i ~into:j)
              (Runtime.Markov.probability b ~from:i ~into:j)
          done
        done) ]


module Fetch = Runtime.Fetch

let fetch_tests =
  [ Alcotest.test_case "fetch time = latency + bytes/bandwidth" `Quick
      (fun () ->
        let memory =
          { Fetch.bandwidth_bytes_per_s = 164_000.; latency_s = 0.5 }
        in
        (* 10 frames = 1640 bytes at 164 kB/s = 10 ms, plus latency. *)
        Alcotest.(check (float 1e-9)) "time" 0.51
          (Fetch.fetch_seconds memory ~frames:10));
    Alcotest.test_case "zero frames fetch for free" `Quick (fun () ->
        Alcotest.(check (float 0.)) "free" 0.
          (Fetch.fetch_seconds Fetch.flash ~frames:0));
    Alcotest.test_case "flash slower than ddr" `Quick (fun () ->
        Alcotest.(check bool) "slower" true
          (Fetch.fetch_seconds Fetch.flash ~frames:100
           > Fetch.fetch_seconds Fetch.ddr ~frames:100));
    Alcotest.test_case "cache hit after miss" `Quick (fun () ->
        let cache = Fetch.create_cache ~capacity_frames:100 () in
        let miss = Fetch.access cache Fetch.flash ~key:(0, 1) ~frames:50 in
        Alcotest.(check bool) "miss first" false miss.Fetch.hit;
        Alcotest.(check bool) "miss costs" true (miss.Fetch.seconds > 0.);
        let hit = Fetch.access cache Fetch.flash ~key:(0, 1) ~frames:50 in
        Alcotest.(check bool) "hit second" true hit.Fetch.hit;
        Alcotest.(check (float 0.)) "hit free" 0. hit.Fetch.seconds;
        Alcotest.(check (pair int int)) "stats" (1, 1) (Fetch.stats cache));
    Alcotest.test_case "oversized bitstream never cached" `Quick (fun () ->
        let cache = Fetch.create_cache ~capacity_frames:10 () in
        let a = Fetch.access cache Fetch.flash ~key:(0, 0) ~frames:20 in
        let b = Fetch.access cache Fetch.flash ~key:(0, 0) ~frames:20 in
        Alcotest.(check bool) "both miss" true
          ((not a.Fetch.hit) && not b.Fetch.hit);
        Alcotest.(check int) "nothing resident" 0 (Fetch.resident_frames cache));
    Alcotest.test_case "lru evicts the cold entry" `Quick (fun () ->
        let cache = Fetch.create_cache ~policy:Fetch.Lru ~capacity_frames:100 () in
        ignore (Fetch.access cache Fetch.flash ~key:(0, 0) ~frames:50);
        ignore (Fetch.access cache Fetch.flash ~key:(0, 1) ~frames:50);
        (* Touch (0,0) so (0,1) becomes the LRU victim. *)
        ignore (Fetch.access cache Fetch.flash ~key:(0, 0) ~frames:50);
        ignore (Fetch.access cache Fetch.flash ~key:(0, 2) ~frames:50);
        Alcotest.(check bool) "(0,0) still hot" true
          (Fetch.access cache Fetch.flash ~key:(0, 0) ~frames:50).Fetch.hit;
        Alcotest.(check bool) "(0,1) evicted" false
          (Fetch.access cache Fetch.flash ~key:(0, 1) ~frames:50).Fetch.hit);
    Alcotest.test_case "fifo ignores recency" `Quick (fun () ->
        let cache = Fetch.create_cache ~policy:Fetch.Fifo ~capacity_frames:100 () in
        ignore (Fetch.access cache Fetch.flash ~key:(0, 0) ~frames:50);
        ignore (Fetch.access cache Fetch.flash ~key:(0, 1) ~frames:50);
        ignore (Fetch.access cache Fetch.flash ~key:(0, 0) ~frames:50);
        ignore (Fetch.access cache Fetch.flash ~key:(0, 2) ~frames:50);
        (* FIFO evicted the oldest insert, (0,0), despite the recent touch. *)
        Alcotest.(check bool) "(0,0) evicted" false
          (Fetch.access cache Fetch.flash ~key:(0, 0) ~frames:50).Fetch.hit);
    Alcotest.test_case "largest-out keeps small residents" `Quick (fun () ->
        let cache =
          Fetch.create_cache ~policy:Fetch.Largest_out ~capacity_frames:100 ()
        in
        ignore (Fetch.access cache Fetch.flash ~key:(0, 0) ~frames:80);
        ignore (Fetch.access cache Fetch.flash ~key:(0, 1) ~frames:10);
        ignore (Fetch.access cache Fetch.flash ~key:(0, 2) ~frames:30);
        Alcotest.(check bool) "small survives" true
          (Fetch.access cache Fetch.flash ~key:(0, 1) ~frames:10).Fetch.hit;
        Alcotest.(check bool) "big evicted" false
          (Fetch.access cache Fetch.flash ~key:(0, 0) ~frames:80).Fetch.hit);
    Alcotest.test_case "walk report: cache only helps" `Quick (fun () ->
        let rng = Synth.Rng.make 77 in
        let sequence =
          Manager.random_walk
            ~rand:(fun n -> Synth.Rng.int rng n)
            ~configs:(Design.configuration_count example)
            ~steps:400 ~initial:0
        in
        let plain =
          Fetch.simulate_walk ~memory:Fetch.flash modular ~initial:0 ~sequence
        in
        let cached =
          Fetch.simulate_walk
            ~cache:(Fetch.create_cache ~capacity_frames:10_000 ())
            ~memory:Fetch.flash modular ~initial:0 ~sequence
        in
        Alcotest.(check int) "same reload count" plain.Fetch.reconfigurations
          cached.Fetch.reconfigurations;
        Alcotest.(check (float 1e-9)) "same icap time" plain.Fetch.icap_seconds
          cached.Fetch.icap_seconds;
        Alcotest.(check bool) "cache saves fetch time" true
          (cached.Fetch.fetch_seconds <= plain.Fetch.fetch_seconds));
    Alcotest.test_case "walk report totals add up" `Quick (fun () ->
        let report =
          Fetch.simulate_walk ~memory:Fetch.ddr modular ~initial:0
            ~sequence:[ 1; 2; 3; 0 ]
        in
        Alcotest.(check (float 1e-9)) "sum" report.Fetch.total_seconds
          (report.Fetch.icap_seconds +. report.Fetch.fetch_seconds)) ]


module Trace = Runtime.Trace

let trace_tests =
  [ Alcotest.test_case "record validates indices" `Quick (fun () ->
        match Trace.record example ~initial:0 ~sequence:[ 99 ] with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    Alcotest.test_case "text round trip" `Quick (fun () ->
        let t = Trace.record example ~initial:0 ~sequence:[ 1; 2; 0; 4 ] in
        match Trace.of_string example (Trace.to_string example t) with
        | Ok t' ->
          Alcotest.(check int) "initial" t.Trace.initial t'.Trace.initial;
          Alcotest.(check (list int)) "sequence" t.Trace.sequence
            t'.Trace.sequence
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "comments and blanks ignored" `Quick (fun () ->
        let text =
          "# prpart-trace v1\n\ndesign running-example\n# hi\ninitial \
           conf1\n\nconf2\n"
        in
        match Trace.of_string example text with
        | Ok t -> Alcotest.(check (list int)) "sequence" [ 1 ] t.Trace.sequence
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "wrong design name rejected" `Quick (fun () ->
        let t = Trace.record example ~initial:0 ~sequence:[ 1 ] in
        let text = Trace.to_string example t in
        Alcotest.(check bool) "error" true
          (Result.is_error
             (Trace.of_string Design_library.video_receiver text)));
    Alcotest.test_case "unknown configuration rejected" `Quick (fun () ->
        Alcotest.(check bool) "error" true
          (Result.is_error
             (Trace.of_string example "initial confX\n")));
    Alcotest.test_case "missing initial rejected" `Quick (fun () ->
        Alcotest.(check bool) "error" true
          (Result.is_error (Trace.of_string example "conf1\n")));
    Alcotest.test_case "simulate equals manager on the same walk" `Quick
      (fun () ->
        let t = Trace.record example ~initial:0 ~sequence:[ 1; 2; 3; 4; 0 ] in
        let via_trace = Trace.simulate modular t in
        let direct =
          Manager.simulate modular ~initial:0 ~sequence:[ 1; 2; 3; 4; 0 ]
        in
        Alcotest.(check int) "frames" direct.Manager.total_frames
          via_trace.Manager.total_frames);
    Alcotest.test_case "simulate rejects foreign schemes" `Quick (fun () ->
        let t = Trace.record example ~initial:0 ~sequence:[ 1 ] in
        let other =
          Scheme.one_module_per_region Design_library.video_receiver
        in
        match Trace.simulate other t with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    Alcotest.test_case "of_markov sampling follows the chain" `Quick
      (fun () ->
        let configs = Design.configuration_count example in
        let chain = Runtime.Markov.uniform ~configs in
        let rng = Synth.Rng.make 17 in
        let t =
          Trace.of_markov example ~chain
            ~rand:(fun () -> Synth.Rng.float rng)
            ~steps:2000 ~initial:0
        in
        Alcotest.(check int) "length" 2000 (Trace.length t);
        (* Uniform chain: each configuration visited a reasonable share. *)
        let counts = Array.make configs 0 in
        List.iter (fun c -> counts.(c) <- counts.(c) + 1) t.Trace.sequence;
        Array.iter
          (fun n -> Alcotest.(check bool) "visited enough" true (n > 200))
          counts);
    Alcotest.test_case "of_markov checks the chain size" `Quick (fun () ->
        let chain = Runtime.Markov.uniform ~configs:3 in
        match
          Trace.of_markov example ~chain ~rand:(fun () -> 0.5) ~steps:1
            ~initial:0
        with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    Alcotest.test_case "file round trip" `Quick (fun () ->
        let path = Filename.temp_file "trace" ".txt" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            let t = Trace.record example ~initial:2 ~sequence:[ 0; 1 ] in
            Trace.save_file example path t;
            match Trace.load_file example path with
            | Ok t' ->
              Alcotest.(check int) "initial" 2 t'.Trace.initial;
              Alcotest.(check (list int)) "sequence" [ 0; 1 ] t'.Trace.sequence
            | Error e -> Alcotest.fail e)) ]

let () =
  Alcotest.run "runtime"
    [ ("transition", transition_tests);
      ("manager", manager_tests);
      ("walk", walk_tests);
      ("markov", markov_tests);
      ("fetch", fetch_tests);
      ("trace", trace_tests);
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_walk_proposed_beats_single ] ) ]
