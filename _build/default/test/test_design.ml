(* Tests for the design model: modes, modules, configurations, design
   validation, flat mode ids, aggregate areas, XML round-trips and the
   built-in paper designs. *)

module Resource = Fpga.Resource
module Mode = Prdesign.Mode
module Pmodule = Prdesign.Pmodule
module Configuration = Prdesign.Configuration
module Design = Prdesign.Design
module Design_xml = Prdesign.Design_xml
module Design_library = Prdesign.Design_library

let res ?bram ?dsp clb = Resource.make ?bram ?dsp clb
let resource_eq = Alcotest.testable Resource.pp Resource.equal

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i =
    if i + nn > nh then false
    else String.sub haystack i nn = needle || scan (i + 1)
  in
  scan 0

let mode_tests =
  [ Alcotest.test_case "make stores fields" `Quick (fun () ->
        let m = Mode.make "fast" (res 10 ~dsp:2) in
        Alcotest.(check string) "name" "fast" m.Mode.name;
        Alcotest.check resource_eq "resources" (res 10 ~dsp:2) m.Mode.resources);
    Alcotest.test_case "empty name rejected" `Quick (fun () ->
        Alcotest.check_raises "empty" (Invalid_argument "Mode.make: empty name")
          (fun () -> ignore (Mode.make "" (res 1))));
    Alcotest.test_case "equal compares both fields" `Quick (fun () ->
        let a = Mode.make "x" (res 1) in
        Alcotest.(check bool) "same" true (Mode.equal a (Mode.make "x" (res 1)));
        Alcotest.(check bool) "different resources" false
          (Mode.equal a (Mode.make "x" (res 2)));
        Alcotest.(check bool) "different name" false
          (Mode.equal a (Mode.make "y" (res 1)))) ]

let pmodule_tests =
  [ Alcotest.test_case "largest_mode is per component" `Quick (fun () ->
        let m =
          Pmodule.make "M"
            [ Mode.make "a" (res 10 ~bram:5); Mode.make "b" (res 20 ~dsp:7) ]
        in
        Alcotest.check resource_eq "max" (res 20 ~bram:5 ~dsp:7)
          (Pmodule.largest_mode m));
    Alcotest.test_case "modes_total sums" `Quick (fun () ->
        let m =
          Pmodule.make "M" [ Mode.make "a" (res 10); Mode.make "b" (res 20) ]
        in
        Alcotest.check resource_eq "sum" (res 30) (Pmodule.modes_total m));
    Alcotest.test_case "find_mode" `Quick (fun () ->
        let m =
          Pmodule.make "M" [ Mode.make "a" (res 1); Mode.make "b" (res 2) ]
        in
        Alcotest.(check (option int)) "b" (Some 1) (Pmodule.find_mode m "b");
        Alcotest.(check (option int)) "missing" None (Pmodule.find_mode m "z"));
    Alcotest.test_case "empty modes rejected" `Quick (fun () ->
        Alcotest.check_raises "empty"
          (Invalid_argument "Pmodule.make: a module needs >= 1 mode")
          (fun () -> ignore (Pmodule.make "M" [])));
    Alcotest.test_case "duplicate mode names rejected" `Quick (fun () ->
        match Pmodule.make "M" [ Mode.make "a" (res 1); Mode.make "a" (res 2) ] with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument") ]

let configuration_tests =
  [ Alcotest.test_case "choices sorted by module" `Quick (fun () ->
        let c = Configuration.make "c" [ (2, 0); (0, 1) ] in
        Alcotest.(check (list (pair int int))) "sorted" [ (0, 1); (2, 0) ]
          c.Configuration.choices);
    Alcotest.test_case "duplicate module rejected" `Quick (fun () ->
        match Configuration.make "c" [ (0, 0); (0, 1) ] with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    Alcotest.test_case "empty rejected" `Quick (fun () ->
        match Configuration.make "c" [] with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    Alcotest.test_case "negative index rejected" `Quick (fun () ->
        match Configuration.make "c" [ (-1, 0) ] with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    Alcotest.test_case "mode_of_module and modules_used" `Quick (fun () ->
        let c = Configuration.make "c" [ (0, 1); (3, 2) ] in
        Alcotest.(check (option int)) "module 0" (Some 1)
          (Configuration.mode_of_module c 0);
        Alcotest.(check (option int)) "absent module" None
          (Configuration.mode_of_module c 1);
        Alcotest.(check (list int)) "used" [ 0; 3 ]
          (Configuration.modules_used c);
        Alcotest.(check int) "cardinal" 2 (Configuration.cardinal c)) ]

(* A small two-module design used in many tests below. *)
let small_design () =
  Design.create_exn ~name:"small"
    ~modules:
      [ Pmodule.make "A" [ Mode.make "a1" (res 100); Mode.make "a2" (res 400 ~bram:2) ];
        Pmodule.make "B" [ Mode.make "b1" (res 350 ~dsp:6); Mode.make "b2" (res 120) ] ]
    ~configurations:
      [ Configuration.make "c1" [ (0, 0); (1, 0) ];
        Configuration.make "c2" [ (0, 1); (1, 1) ];
        Configuration.make "c3" [ (0, 0); (1, 1) ] ]
    ()

let design_validation_tests =
  [ Alcotest.test_case "valid design accepted" `Quick (fun () ->
        let d = small_design () in
        Alcotest.(check int) "modules" 2 (Design.module_count d);
        Alcotest.(check int) "modes" 4 (Design.mode_count d);
        Alcotest.(check int) "configs" 3 (Design.configuration_count d));
    Alcotest.test_case "unused mode rejected by default" `Quick (fun () ->
        let result =
          Design.create ~name:"bad"
            ~modules:
              [ Pmodule.make "A"
                  [ Mode.make "a1" (res 1); Mode.make "a2" (res 2) ] ]
            ~configurations:[ Configuration.make "c" [ (0, 0) ] ]
            ()
        in
        match result with
        | Error issues ->
          Alcotest.(check bool) "mentions mode" true
            (List.exists (fun s -> contains s "never used") issues)
        | Ok _ -> Alcotest.fail "expected validation failure");
    Alcotest.test_case "unused mode allowed with flag" `Quick (fun () ->
        let result =
          Design.create ~allow_unused_modes:true ~name:"ok"
            ~modules:
              [ Pmodule.make "A"
                  [ Mode.make "a1" (res 1); Mode.make "a2" (res 2) ] ]
            ~configurations:[ Configuration.make "c" [ (0, 0) ] ]
            ()
        in
        Alcotest.(check bool) "accepted" true (Result.is_ok result));
    Alcotest.test_case "out-of-range module reference" `Quick (fun () ->
        let result =
          Design.create ~name:"bad"
            ~modules:[ Pmodule.make "A" [ Mode.make "a1" (res 1) ] ]
            ~configurations:[ Configuration.make "c" [ (5, 0) ] ]
            ()
        in
        Alcotest.(check bool) "rejected" true (Result.is_error result));
    Alcotest.test_case "out-of-range mode reference" `Quick (fun () ->
        let result =
          Design.create ~name:"bad"
            ~modules:[ Pmodule.make "A" [ Mode.make "a1" (res 1) ] ]
            ~configurations:[ Configuration.make "c" [ (0, 3) ] ]
            ()
        in
        Alcotest.(check bool) "rejected" true (Result.is_error result));
    Alcotest.test_case "duplicate module names rejected" `Quick (fun () ->
        let result =
          Design.create ~name:"bad"
            ~modules:
              [ Pmodule.make "A" [ Mode.make "a1" (res 1) ];
                Pmodule.make "A" [ Mode.make "a1" (res 1) ] ]
            ~configurations:
              [ Configuration.make "c" [ (0, 0); (1, 0) ] ]
            ()
        in
        Alcotest.(check bool) "rejected" true (Result.is_error result));
    Alcotest.test_case "duplicate configuration names rejected" `Quick
      (fun () ->
        let result =
          Design.create ~name:"bad"
            ~modules:[ Pmodule.make "A" [ Mode.make "a1" (res 1) ] ]
            ~configurations:
              [ Configuration.make "c" [ (0, 0) ];
                Configuration.make "c" [ (0, 0) ] ]
            ()
        in
        Alcotest.(check bool) "rejected" true (Result.is_error result));
    Alcotest.test_case "no configurations rejected" `Quick (fun () ->
        let result =
          Design.create ~name:"bad"
            ~modules:[ Pmodule.make "A" [ Mode.make "a1" (res 1) ] ]
            ~configurations:[] ()
        in
        Alcotest.(check bool) "rejected" true (Result.is_error result));
    Alcotest.test_case "all issues reported at once" `Quick (fun () ->
        let result =
          Design.create ~name:""
            ~modules:[ Pmodule.make "A" [ Mode.make "a1" (res 1) ] ]
            ~configurations:[ Configuration.make "c" [ (7, 0) ] ]
            ()
        in
        match result with
        | Error issues ->
          Alcotest.(check bool) ">= 2 issues" true (List.length issues >= 2)
        | Ok _ -> Alcotest.fail "expected failure");
    Alcotest.test_case "create_exn raises with message" `Quick (fun () ->
        match
          Design.create_exn ~name:"bad"
            ~modules:[ Pmodule.make "A" [ Mode.make "a1" (res 1) ] ]
            ~configurations:[ Configuration.make "c" [ (9, 9) ] ]
            ()
        with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument") ]

let mode_id_tests =
  [ Alcotest.test_case "ids are module-major" `Quick (fun () ->
        let d = small_design () in
        Alcotest.(check int) "A.a1" 0 (Design.mode_id d ~module_idx:0 ~mode_idx:0);
        Alcotest.(check int) "A.a2" 1 (Design.mode_id d ~module_idx:0 ~mode_idx:1);
        Alcotest.(check int) "B.b1" 2 (Design.mode_id d ~module_idx:1 ~mode_idx:0));
    Alcotest.test_case "round trip id <-> (module, mode)" `Quick (fun () ->
        let d = small_design () in
        List.iter
          (fun id ->
            let m = Design.module_of_mode d id in
            let k = Design.mode_idx_of_mode d id in
            Alcotest.(check int) "round trip" id
              (Design.mode_id d ~module_idx:m ~mode_idx:k))
          (Design.all_mode_ids d));
    Alcotest.test_case "out-of-range rejected" `Quick (fun () ->
        let d = small_design () in
        (match Design.mode_id d ~module_idx:9 ~mode_idx:0 with
         | exception Invalid_argument _ -> ()
         | _ -> Alcotest.fail "module range");
        match Design.module_of_mode d 99 with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "mode range");
    Alcotest.test_case "labels use 1-based ordinals" `Quick (fun () ->
        let d = small_design () in
        Alcotest.(check string) "A1" "A1" (Design.mode_label d 0);
        Alcotest.(check string) "B2" "B2" (Design.mode_label d 3);
        Alcotest.(check string) "qualified" "A.a2" (Design.mode_name d 1));
    Alcotest.test_case "config_mode_ids sorted" `Quick (fun () ->
        let d = small_design () in
        Alcotest.(check (list int)) "c2" [ 1; 3 ] (Design.config_mode_ids d 1));
    Alcotest.test_case "mode_resources" `Quick (fun () ->
        let d = small_design () in
        Alcotest.check resource_eq "a2" (res 400 ~bram:2)
          (Design.mode_resources d 1)) ]

let aggregate_tests =
  [ Alcotest.test_case "config_resources sums modes" `Quick (fun () ->
        let d = small_design () in
        Alcotest.check resource_eq "c1" (res 450 ~dsp:6)
          (Design.config_resources d 0));
    Alcotest.test_case "min_region_requirement is per-component max" `Quick
      (fun () ->
        let d = small_design () in
        (* c1 = 450 clb + 6 dsp; c2 = 520 clb + 2 bram; c3 = 220 clb. *)
        Alcotest.check resource_eq "max" (res 520 ~bram:2 ~dsp:6)
          (Design.min_region_requirement d));
    Alcotest.test_case "modular_requirement sums largest modes" `Quick
      (fun () ->
        let d = small_design () in
        Alcotest.check resource_eq "sum"
          (res 750 ~bram:2 ~dsp:6)
          (Design.modular_requirement d));
    Alcotest.test_case "static_requirement sums everything" `Quick (fun () ->
        let d = small_design () in
        Alcotest.check resource_eq "sum"
          (res 970 ~bram:2 ~dsp:6)
          (Design.static_requirement d));
    Alcotest.test_case "static overhead stored" `Quick (fun () ->
        let d =
          Design.create_exn ~static_overhead:(res 90 ~bram:8) ~name:"s"
            ~modules:[ Pmodule.make "A" [ Mode.make "a" (res 1) ] ]
            ~configurations:[ Configuration.make "c" [ (0, 0) ] ]
            ()
        in
        Alcotest.check resource_eq "overhead" (res 90 ~bram:8)
          d.Design.static_overhead) ]

let xml_tests =
  [ Alcotest.test_case "round trip small design" `Quick (fun () ->
        let d = small_design () in
        let d' = Design_xml.load_string (Design_xml.to_string d) in
        Alcotest.(check string) "name" d.Design.name d'.Design.name;
        Alcotest.(check int) "modes" (Design.mode_count d) (Design.mode_count d');
        Alcotest.(check int) "configs"
          (Design.configuration_count d)
          (Design.configuration_count d');
        List.iter
          (fun id ->
            Alcotest.check resource_eq "mode resources"
              (Design.mode_resources d id)
              (Design.mode_resources d' id))
          (Design.all_mode_ids d));
    Alcotest.test_case "round trip with static overhead" `Quick (fun () ->
        let d =
          Design.create_exn ~static_overhead:(res 90 ~bram:8) ~name:"s"
            ~modules:[ Pmodule.make "A" [ Mode.make "a" (res 1) ] ]
            ~configurations:[ Configuration.make "c" [ (0, 0) ] ]
            ()
        in
        let d' = Design_xml.load_string (Design_xml.to_string d) in
        Alcotest.check resource_eq "overhead" (res 90 ~bram:8)
          d'.Design.static_overhead);
    Alcotest.test_case "parse hand-written xml" `Quick (fun () ->
        let d =
          Design_xml.load_string
            {|<design name="demo">
                <module name="F">
                  <mode name="lp" clb="10" dsp="2"/>
                  <mode name="hp" clb="20"/>
                </module>
                <configurations>
                  <configuration name="c1"><use module="F" mode="lp"/></configuration>
                  <configuration name="c2"><use module="F" mode="hp"/></configuration>
                </configurations>
              </design>|}
        in
        Alcotest.(check int) "modes" 2 (Design.mode_count d);
        Alcotest.check resource_eq "lp" (res 10 ~dsp:2) (Design.mode_resources d 0));
    Alcotest.test_case "unknown module in configuration" `Quick (fun () ->
        match
          Design_xml.load_string
            {|<design name="demo">
                <module name="F"><mode name="m" clb="1"/></module>
                <configurations>
                  <configuration name="c"><use module="G" mode="m"/></configuration>
                </configurations>
              </design>|}
        with
        | exception Design_xml.Malformed _ -> ()
        | _ -> Alcotest.fail "expected Malformed");
    Alcotest.test_case "unknown mode in configuration" `Quick (fun () ->
        match
          Design_xml.load_string
            {|<design name="demo">
                <module name="F"><mode name="m" clb="1"/></module>
                <configurations>
                  <configuration name="c"><use module="F" mode="zz"/></configuration>
                </configurations>
              </design>|}
        with
        | exception Design_xml.Malformed _ -> ()
        | _ -> Alcotest.fail "expected Malformed");
    Alcotest.test_case "missing configurations element" `Quick (fun () ->
        match
          Design_xml.load_string
            {|<design name="demo"><module name="F"><mode name="m" clb="1"/></module></design>|}
        with
        | exception Design_xml.Malformed _ -> ()
        | _ -> Alcotest.fail "expected Malformed");
    Alcotest.test_case "non-integer resource rejected" `Quick (fun () ->
        match
          Design_xml.load_string
            {|<design name="demo">
                <module name="F"><mode name="m" clb="lots"/></module>
                <configurations>
                  <configuration name="c"><use module="F" mode="m"/></configuration>
                </configurations>
              </design>|}
        with
        | exception Design_xml.Malformed _ -> ()
        | _ -> Alcotest.fail "expected Malformed");
    Alcotest.test_case "wrong root element" `Quick (fun () ->
        match Design_xml.load_string "<thing/>" with
        | exception Design_xml.Malformed _ -> ()
        | _ -> Alcotest.fail "expected Malformed");
    Alcotest.test_case "file round trip" `Quick (fun () ->
        let path = Filename.temp_file "design" ".xml" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            Design_xml.save_file path (small_design ());
            let d = Design_xml.load_file path in
            Alcotest.(check string) "name" "small" d.Design.name)) ]

let library_tests =
  [ Alcotest.test_case "running example shape" `Quick (fun () ->
        let d = Design_library.running_example in
        Alcotest.(check int) "modules" 3 (Design.module_count d);
        Alcotest.(check int) "modes" 8 (Design.mode_count d);
        Alcotest.(check int) "configs" 5 (Design.configuration_count d));
    Alcotest.test_case "video receiver matches Table II" `Quick (fun () ->
        let d = Design_library.video_receiver in
        Alcotest.(check int) "modules" 5 (Design.module_count d);
        Alcotest.(check int) "modes" 14 (Design.mode_count d);
        Alcotest.(check int) "configs" 8 (Design.configuration_count d);
        (* Spot-check Table II rows. *)
        let by_name name =
          let rec find = function
            | [] -> Alcotest.fail ("missing mode " ^ name)
            | id :: rest ->
              if Design.mode_name d id = name then Design.mode_resources d id
              else find rest
          in
          find (Design.all_mode_ids d)
        in
        Alcotest.check resource_eq "Filter1" (res 818 ~dsp:28) (by_name "F.Filter1");
        Alcotest.check resource_eq "Turbo" (res 748 ~bram:15 ~dsp:4) (by_name "D.Turbo");
        Alcotest.check resource_eq "MPEG4" (res 4700 ~bram:40 ~dsp:65) (by_name "V.MPEG4");
        Alcotest.check resource_eq "None" (res 0) (by_name "R.None"));
    Alcotest.test_case "alt receiver has 5 configurations" `Quick (fun () ->
        Alcotest.(check int) "configs" 5
          (Design.configuration_count Design_library.video_receiver_alt));
    Alcotest.test_case "montone example is single-mode modules" `Quick
      (fun () ->
        let d = Design_library.montone_example in
        Alcotest.(check int) "modules" 5 (Design.module_count d);
        Alcotest.(check int) "modes" 5 (Design.mode_count d);
        Array.iter
          (fun m -> Alcotest.(check int) "one mode" 1 (Pmodule.mode_count m))
          d.Design.modules);
    Alcotest.test_case "find built-ins" `Quick (fun () ->
        Alcotest.(check bool) "receiver" true
          (Design_library.find "video-receiver" <> None);
        Alcotest.(check bool) "missing" true (Design_library.find "nope" = None));
    Alcotest.test_case "library designs export to xml and back" `Quick
      (fun () ->
        List.iter
          (fun (_, d) ->
            (* The receiver designs have an unused mode, which re-import
               validates strictly; skip those two. *)
            if
              d.Design.name <> "video-receiver"
              && d.Design.name <> "video-receiver-alt"
            then begin
              let d' = Design_xml.load_string (Design_xml.to_string d) in
              Alcotest.(check int) "modes" (Design.mode_count d)
                (Design.mode_count d')
            end)
          Design_library.all) ]


module Lint = Prdesign.Lint

let has_code code findings =
  List.exists (fun (f : Lint.finding) -> f.code = code) findings

let lint_tests =
  [ Alcotest.test_case "clean design has no warnings" `Quick (fun () ->
        let findings = Lint.check (small_design ()) in
        Alcotest.(check bool) "no warnings" true
          (List.for_all
             (fun (f : Lint.finding) -> f.severity <> Lint.Warning)
             findings));
    Alcotest.test_case "unused mode flagged" `Quick (fun () ->
        let findings = Lint.check Design_library.video_receiver in
        Alcotest.(check bool) "unused-mode" true
          (has_code "unused-mode" findings));
    Alcotest.test_case "zero-area mode flagged" `Quick (fun () ->
        Alcotest.(check bool) "zero-area-mode" true
          (has_code "zero-area-mode" (Lint.check Design_library.video_receiver)));
    Alcotest.test_case "duplicate configurations flagged" `Quick (fun () ->
        let d =
          Design.create_exn ~name:"dups"
            ~modules:
              [ Pmodule.make "A"
                  [ Mode.make "a1" (res 1); Mode.make "a2" (res 2) ] ]
            ~configurations:
              [ Configuration.make "c1" [ (0, 0) ];
                Configuration.make "c2" [ (0, 1) ];
                Configuration.make "c3" [ (0, 0) ] ]
            ()
        in
        Alcotest.(check bool) "duplicate-configuration" true
          (has_code "duplicate-configuration" (Lint.check d)));
    Alcotest.test_case "constant module flagged" `Quick (fun () ->
        let d =
          Design.create_exn ~allow_unused_modes:true ~name:"const"
            ~modules:
              [ Pmodule.make "A"
                  [ Mode.make "a1" (res 10); Mode.make "a2" (res 20) ];
                Pmodule.make "B"
                  [ Mode.make "b1" (res 10); Mode.make "b2" (res 20) ] ]
            ~configurations:
              [ Configuration.make "c1" [ (0, 0); (1, 0) ];
                Configuration.make "c2" [ (0, 0); (1, 1) ] ]
            ()
        in
        (* Module A runs a1 in both configurations. *)
        Alcotest.(check bool) "constant-module" true
          (has_code "constant-module" (Lint.check d)));
    Alcotest.test_case "dominant mode flagged" `Quick (fun () ->
        let d =
          Design.create_exn ~name:"dom"
            ~modules:
              [ Pmodule.make "A"
                  [ Mode.make "small" (res 10); Mode.make "huge" (res 500) ] ]
            ~configurations:
              [ Configuration.make "c1" [ (0, 0) ];
                Configuration.make "c2" [ (0, 1) ] ]
            ()
        in
        Alcotest.(check bool) "dominant-mode" true
          (has_code "dominant-mode" (Lint.check d)));
    Alcotest.test_case "identical modes flagged" `Quick (fun () ->
        let d =
          Design.create_exn ~name:"same"
            ~modules:
              [ Pmodule.make "A"
                  [ Mode.make "x" (res 10); Mode.make "y" (res 10) ] ]
            ~configurations:
              [ Configuration.make "c1" [ (0, 0) ];
                Configuration.make "c2" [ (0, 1) ] ]
            ()
        in
        Alcotest.(check bool) "identical-modes" true
          (has_code "identical-modes" (Lint.check d)));
    Alcotest.test_case "warnings sort before infos" `Quick (fun () ->
        let findings = Lint.check Design_library.video_receiver in
        let rec sorted = function
          | { Lint.severity = Lint.Info; _ }
            :: { Lint.severity = Lint.Warning; _ } :: _ ->
            false
          | _ :: rest -> sorted rest
          | [] -> true
        in
        Alcotest.(check bool) "warnings first" true (sorted findings));
    Alcotest.test_case "render mentions codes" `Quick (fun () ->
        let rendered = Lint.render (Lint.check Design_library.video_receiver) in
        Alcotest.(check bool) "has unused-mode" true
          (contains rendered "unused-mode");
        Alcotest.(check string) "clean" "no findings\n" (Lint.render [])) ]

let () =
  Alcotest.run "design"
    [ ("mode", mode_tests);
      ("pmodule", pmodule_tests);
      ("configuration", configuration_tests);
      ("validation", design_validation_tests);
      ("mode-ids", mode_id_tests);
      ("aggregates", aggregate_tests);
      ("xml", xml_tests);
      ("library", library_tests);
      ("lint", lint_tests) ]
