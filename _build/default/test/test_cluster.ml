(* Tests for the clustering library: base partitions and the agglomerative
   loop, anchored on the paper's Table I. *)

module Design = Prdesign.Design
module Design_library = Prdesign.Design_library
module Base_partition = Cluster.Base_partition
module Agglomerative = Cluster.Agglomerative

let example = Design_library.running_example

(* Mode ids: A1=0 A2=1 A3=2 B1=3 B2=4 C1=5 C2=6 C3=7. *)

let bp modes freq = Base_partition.make example ~modes ~freq

let base_partition_tests =
  [ Alcotest.test_case "resources are the sum of modes" `Quick (fun () ->
        (* A3 (250 clb, 1 bram) + B2 (120 clb, 1 bram). *)
        let p = bp [ 2; 4 ] 2 in
        Alcotest.(check int) "clb" 370 p.Base_partition.resources.Fpga.Resource.clb;
        Alcotest.(check int) "bram" 2 p.Base_partition.resources.Fpga.Resource.bram);
    Alcotest.test_case "frames are tile-quantised" `Quick (fun () ->
        (* 370 clb -> 19 tiles * 36 + 2 bram -> 1 tile * 30 = 714. *)
        let p = bp [ 2; 4 ] 2 in
        Alcotest.(check int) "frames" 714 p.Base_partition.frames);
    Alcotest.test_case "cardinal, mem, overlaps" `Quick (fun () ->
        let p = bp [ 0; 4 ] 1 and q = bp [ 4; 7 ] 2 and r = bp [ 1 ] 1 in
        Alcotest.(check int) "cardinal" 2 (Base_partition.cardinal p);
        Alcotest.(check bool) "mem" true (Base_partition.mem 0 p);
        Alcotest.(check bool) "not mem" false (Base_partition.mem 1 p);
        Alcotest.(check bool) "overlaps" true (Base_partition.overlaps p q);
        Alcotest.(check bool) "disjoint" false (Base_partition.overlaps p r));
    Alcotest.test_case "equal_modes ignores freq" `Quick (fun () ->
        Alcotest.(check bool) "same" true
          (Base_partition.equal_modes (bp [ 0; 4 ] 1) (bp [ 0; 4 ] 2)));
    Alcotest.test_case "validation" `Quick (fun () ->
        let invalid f =
          match f () with
          | exception Invalid_argument _ -> ()
          | _ -> Alcotest.fail "expected Invalid_argument"
        in
        invalid (fun () -> bp [] 1);
        invalid (fun () -> bp [ 4; 0 ] 1);
        invalid (fun () -> bp [ 0; 0 ] 1);
        invalid (fun () -> bp [ 0 ] 0);
        invalid (fun () -> bp [ 99 ] 1));
    Alcotest.test_case "priority order: cardinality, freq, area" `Quick
      (fun () ->
        let smaller_card = bp [ 1 ] 1 and pair = bp [ 0; 4 ] 1 in
        Alcotest.(check bool) "cardinality first" true
          (Base_partition.compare_priority smaller_card pair < 0);
        let low_freq = bp [ 1 ] 1 and high_freq = bp [ 4 ] 4 in
        Alcotest.(check bool) "freq second" true
          (Base_partition.compare_priority low_freq high_freq < 0);
        (* A1 (100 clb) vs C1 (200 clb), both freq 2. *)
        let small_area = bp [ 0 ] 2 and big_area = bp [ 5 ] 2 in
        Alcotest.(check bool) "area third" true
          (Base_partition.compare_priority small_area big_area < 0));
    Alcotest.test_case "label uses paper-style names" `Quick (fun () ->
        Alcotest.(check string) "label" "{A3, B2}"
          (Base_partition.label example (bp [ 2; 4 ] 2))) ]

let modes_set partitions =
  List.map (fun (p : Base_partition.t) -> p.modes) partitions

let table1_tests =
  [ Alcotest.test_case "26 base partitions, 8+13+5 by size" `Quick (fun () ->
        let partitions = Agglomerative.run example in
        Alcotest.(check int) "total" 26 (List.length partitions);
        let by_size n =
          List.length
            (List.filter (fun p -> Base_partition.cardinal p = n) partitions)
        in
        Alcotest.(check int) "singletons" 8 (by_size 1);
        Alcotest.(check int) "pairs" 13 (by_size 2);
        Alcotest.(check int) "triples" 5 (by_size 3));
    Alcotest.test_case "frequency weights match Table I" `Quick (fun () ->
        let partitions = Agglomerative.run example in
        let freq modes =
          match
            List.find_opt
              (fun (p : Base_partition.t) -> p.modes = modes)
              partitions
          with
          | Some p -> p.Base_partition.freq
          | None -> Alcotest.fail "missing base partition"
        in
        (* Singletons (paper: {A2}=1, {A1}=2, {B2}=4). *)
        Alcotest.(check int) "{A2}" 1 (freq [ 1 ]);
        Alcotest.(check int) "{A1}" 2 (freq [ 0 ]);
        Alcotest.(check int) "{B2}" 4 (freq [ 4 ]);
        (* Pairs (paper: {A3,B2}=2, {B2,C3}=2, {A1,B1}=1). *)
        Alcotest.(check int) "{A3,B2}" 2 (freq [ 2; 4 ]);
        Alcotest.(check int) "{B2,C3}" 2 (freq [ 4; 7 ]);
        Alcotest.(check int) "{A1,B1}" 1 (freq [ 0; 3 ]);
        (* Triples are the configurations, all weight 1. *)
        Alcotest.(check int) "{A3,B2,C3}" 1 (freq [ 2; 4; 7 ]);
        Alcotest.(check int) "{A1,B1,C1}" 1 (freq [ 0; 3; 5 ]));
    Alcotest.test_case "unsupported cliques are excluded" `Quick (fun () ->
        (* {A1,B2,C1} is a clique of the co-occurrence graph but occurs in
           no configuration; the paper's Table I omits it. *)
        let partitions = Agglomerative.run example in
        Alcotest.(check bool) "no {A1,B2,C1}" false
          (List.mem [ 0; 4; 5 ] (modes_set partitions)));
    Alcotest.test_case "list is sorted by priority" `Quick (fun () ->
        let partitions = Agglomerative.run example in
        let rec sorted = function
          | a :: (b :: _ as rest) ->
            Base_partition.compare_priority a b <= 0 && sorted rest
          | [ _ ] | [] -> true
        in
        Alcotest.(check bool) "sorted" true (sorted partitions));
    Alcotest.test_case "triples equal the configuration mode sets" `Quick
      (fun () ->
        let partitions = Agglomerative.run example in
        let triples =
          List.filter (fun p -> Base_partition.cardinal p = 3) partitions
        in
        let configs =
          List.sort_uniq compare
            (List.init (Design.configuration_count example)
               (Design.config_mode_ids example))
        in
        Alcotest.(check (list (list int))) "same sets" configs
          (List.sort compare (modes_set triples))) ]

let min_edge_tests =
  [ Alcotest.test_case "min-edge rule keeps unsupported cliques" `Quick
      (fun () ->
        let partitions = Agglomerative.run ~freq_rule:Min_edge example in
        Alcotest.(check bool) "{A1,B2,C1} present" true
          (List.mem [ 0; 4; 5 ] (modes_set partitions));
        Alcotest.(check bool) "superset of support rule" true
          (List.length partitions > 26));
    Alcotest.test_case "min-edge weights: singletons use node weight" `Quick
      (fun () ->
        let partitions = Agglomerative.run ~freq_rule:Min_edge example in
        match
          List.find_opt
            (fun (p : Base_partition.t) -> p.modes = [ 4 ])
            partitions
        with
        | Some p -> Alcotest.(check int) "{B2}" 4 p.Base_partition.freq
        | None -> Alcotest.fail "missing singleton") ]

let other_design_tests =
  [ Alcotest.test_case "montone example: only singletons and the two configs"
      `Quick (fun () ->
        (* No mode relations: base partitions are 5 singletons plus every
           subset of the two disjoint configurations. *)
        let d = Design_library.montone_example in
        let partitions = Agglomerative.run d in
        let sizes =
          List.map Base_partition.cardinal partitions
          |> List.sort_uniq Int.compare
        in
        Alcotest.(check (list int)) "sizes 1-3" [ 1; 2; 3 ] sizes;
        (* Subsets: 5 singletons + C(2,2)=1 + (C(3,2)=3 + C(3,3)=1). *)
        Alcotest.(check int) "count" 10 (List.length partitions));
    Alcotest.test_case "receiver: unused None mode never clustered" `Quick
      (fun () ->
        let d = Design_library.video_receiver in
        let partitions = Agglomerative.run d in
        (* R.None has flat id 5. *)
        Alcotest.(check bool) "no R4" true
          (List.for_all
             (fun (p : Base_partition.t) -> not (Base_partition.mem 5 p))
             partitions));
    Alcotest.test_case "trace covers all positive-weight links" `Quick
      (fun () ->
        let trace = Agglomerative.trace example in
        Alcotest.(check int) "13 links" 13 (List.length trace);
        (* Links are taken in descending edge-weight order. *)
        let weights = List.map (fun ((_, _, w), _) -> w) trace in
        let rec non_increasing = function
          | a :: (b :: _ as rest) -> a >= b && non_increasing rest
          | [ _ ] | [] -> true
        in
        Alcotest.(check bool) "descending" true (non_increasing weights));
    Alcotest.test_case "trace partitions union = run minus singletons" `Quick
      (fun () ->
        let from_trace =
          List.concat_map snd (Agglomerative.trace example)
          |> modes_set |> List.sort compare
        in
        let from_run =
          Agglomerative.run example
          |> List.filter (fun p -> Base_partition.cardinal p > 1)
          |> modes_set |> List.sort compare
        in
        Alcotest.(check (list (list int))) "same" from_run from_trace) ]

(* Properties over synthetic designs. *)
let gen_design =
  QCheck2.Gen.(
    map
      (fun seed ->
        Synth.Generator.generate
          (Synth.Rng.make seed)
          Synth.Generator.Logic_intensive ~index:seed)
      (0 -- 10_000))

let prop_every_partition_supported =
  QCheck2.Test.make ~name:"every base partition occurs in some configuration"
    ~count:100 gen_design (fun d ->
      let matrix = Prgraph.Conn_matrix.make d in
      List.for_all
        (fun (p : Base_partition.t) ->
          Prgraph.Conn_matrix.support matrix p.modes >= 1
          && p.Base_partition.freq
             = Prgraph.Conn_matrix.support matrix p.modes)
        (Agglomerative.run d))

let prop_singletons_cover_active_modes =
  QCheck2.Test.make ~name:"singleton partitions = active modes" ~count:100
    gen_design (fun d ->
      let partitions = Agglomerative.run d in
      let singles =
        List.filter_map
          (fun (p : Base_partition.t) ->
            match p.modes with [ m ] -> Some m | _ -> None)
          partitions
        |> List.sort_uniq Int.compare
      in
      singles = Prgraph.Conn_matrix.active_modes (Prgraph.Conn_matrix.make d))

let prop_partitions_within_modules_distinct =
  QCheck2.Test.make
    ~name:"no partition holds two modes of one module" ~count:100 gen_design
    (fun d ->
      List.for_all
        (fun (p : Base_partition.t) ->
          let owners = List.map (Design.module_of_mode d) p.modes in
          List.length owners
          = List.length (List.sort_uniq Int.compare owners))
        (Agglomerative.run d))

let () =
  Alcotest.run "cluster"
    [ ("base-partition", base_partition_tests);
      ("table1", table1_tests);
      ("min-edge", min_edge_tests);
      ("other-designs", other_design_tests);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_every_partition_supported;
            prop_singletons_cover_active_modes;
            prop_partitions_within_modules_distinct ] ) ]
