(* A reduced version of the paper's synthetic evaluation: generate a
   population of synthetic adaptive designs (Section V recipe), partition
   each on the smallest suitable Virtex-5, and print the Fig. 7/8-style
   per-device aggregates plus the headline statistics.

   Run with: dune exec examples/synthetic_sweep.exe [count [seed]] *)

let () =
  let count =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 80
  in
  let seed =
    if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 2013
  in
  Format.printf "Sweeping %d synthetic designs (seed %d)...@.@." count seed;
  let rows = Experiments.Sweep.run ~count ~seed () in
  let skipped = count - List.length rows in
  print_string (Experiments.Sweep.render_fig ~metric:`Total rows);
  print_newline ();
  print_string (Experiments.Sweep.render_fig ~metric:`Worst rows);
  print_newline ();
  print_string
    (Experiments.Sweep.render_summary (Experiments.Sweep.summarise ~skipped rows));

  (* Spotlight the single worst regression, if any: the cases where the
     greedy allocation loses to one-module-per-region. *)
  let regressions =
    List.filter
      (fun (r : Experiments.Sweep.row) -> r.proposed_total > r.modular_total)
      rows
  in
  match regressions with
  | [] -> Format.printf "@.No design lost to the modular scheme.@."
  | worst :: _ ->
    Format.printf
      "@.%d design(s) lost to the modular scheme on total time, e.g. %s \
       (proposed %d vs modular %d frames)@."
      (List.length regressions) worst.name worst.proposed_total
      worst.modular_total
