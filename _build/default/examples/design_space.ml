(* Design-space exploration: the area / reconfiguration-time trade-off.

   The paper's algorithm can either partition for a fixed FPGA or suggest
   the smallest suitable one. This example sweeps resource budgets for the
   video-receiver case study from the single-region lower bound up to the
   fully static upper bound, prints the trade-off curve and its Pareto
   frontier, and asks for the smallest suitable catalogued device.

   Run with: dune exec examples/design_space.exe [design-name] *)

let () =
  let design =
    if Array.length Sys.argv > 1 then
      match Prdesign.Design_library.find Sys.argv.(1) with
      | Some d -> d
      | None ->
        Format.eprintf "unknown design %s; see `prpart designs`@." Sys.argv.(1);
        exit 2
    else Prdesign.Design_library.video_receiver
  in
  Format.printf "Design: %s@.@." (Prdesign.Design.summary design);

  (* 1. Bounds of the space. *)
  let lower =
    Fpga.Resource.add
      (Fpga.Tile.quantize (Prdesign.Design.min_region_requirement design))
      design.static_overhead
  in
  let upper =
    Fpga.Resource.add
      (Prdesign.Design.static_requirement design)
      design.static_overhead
  in
  Format.printf "Single-region lower bound: %a@." Fpga.Resource.pp lower;
  Format.printf "Fully static upper bound:  %a@.@." Fpga.Resource.pp upper;

  (* 2. Sweep interpolated budgets. *)
  let budgets = Prcore.Design_space.scaled_budgets ~steps:10 design in
  let results = Prcore.Design_space.sweep design ~budgets in
  Format.printf "Budget sweep (total/worst in frames, area in frame-equivalents):@.";
  print_string (Prcore.Design_space.render results);

  (* 3. The Pareto frontier of feasible points. *)
  let feasible = List.filter_map snd results in
  let frontier = Prcore.Design_space.frontier feasible in
  Format.printf "@.Pareto frontier (area vs total reconfiguration time):@.";
  List.iter
    (fun (p : Prcore.Design_space.point) ->
      Format.printf "  area %6d frames -> total %8d frames (%d regions, %d static)@."
        p.used_frames p.total_frames p.regions p.statics)
    frontier;

  (* 4. Smallest catalogued device. *)
  (match Prcore.Design_space.suggest_device design with
   | Some device ->
     Format.printf "@.Smallest suitable device: %a@." Fpga.Device.pp device
   | None -> Format.printf "@.No catalogued device fits this design.@.");

  (* 5. How the extremes behave at runtime: simulate a random walk at the
     tightest and loosest feasible budgets. *)
  match List.filter_map snd results with
  | [] -> Format.printf "No feasible budget in the sweep.@."
  | points ->
    let tightest = List.hd points in
    let loosest = List.nth points (List.length points - 1) in
    let simulate (p : Prcore.Design_space.point) =
      match
        Prcore.Engine.solve ~target:(Prcore.Engine.Budget p.budget) design
      with
      | Error _ -> ()
      | Ok outcome ->
        let rng = Synth.Rng.make 31 in
        let sequence =
          Runtime.Manager.random_walk
            ~rand:(fun n -> Synth.Rng.int rng n)
            ~configs:(Prdesign.Design.configuration_count design)
            ~steps:2000 ~initial:0
        in
        let stats =
          Runtime.Manager.simulate outcome.scheme ~initial:0 ~sequence
        in
        Format.printf "  budget %a: %a@." Fpga.Resource.pp p.budget
          Runtime.Manager.pp_stats stats
    in
    Format.printf "@.2000-step adaptation walks at the sweep extremes:@.";
    simulate tightest;
    if loosest.budget <> tightest.budget then simulate loosest
