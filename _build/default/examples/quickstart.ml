(* Quickstart: the paper's running example end to end.

   Builds the three-module design of Section III, shows the connectivity
   matrix and the base partitions the clustering derives (Table I), then
   partitions the design for a tight budget and compares against the two
   textbook schemes.

   Run with: dune exec examples/quickstart.exe *)

let () =
  let design = Prdesign.Design_library.running_example in
  Format.printf "Design: %s@.@." (Prdesign.Design.summary design);

  (* 1. The connectivity matrix (one row per configuration). *)
  let matrix = Prgraph.Conn_matrix.make design in
  Format.printf "Connectivity matrix:@.%a@." Prgraph.Conn_matrix.pp matrix;

  (* 2. Agglomerative clustering: base partitions with frequency weights. *)
  let partitions = Cluster.Agglomerative.run design in
  Format.printf "Base partitions (%d):@." (List.length partitions);
  List.iter
    (fun bp -> Format.printf "  %a@." (Cluster.Base_partition.pp design) bp)
    partitions;

  (* 3. Partition for a budget too small for one-region-per-mode. *)
  let budget = Fpga.Resource.make ~bram:8 ~dsp:16 1200 in
  Format.printf "@.Partitioning for budget %a@." Fpga.Resource.pp budget;
  (match Prcore.Engine.solve ~target:(Prcore.Engine.Budget budget) design with
   | Error message -> Format.printf "infeasible: %s@." message
   | Ok outcome ->
     Format.printf "%s" (Prcore.Scheme.describe outcome.scheme);
     Format.printf "%a@.@." Prcore.Cost.pp_evaluation outcome.evaluation;

     (* 4. Compare with the baselines under the same cost model. *)
     Format.printf "Scheme comparison (total / worst frames):@.";
     let show label (evaluation : Prcore.Cost.evaluation) =
       Format.printf "  %-18s %8d / %8d (fits: %b)@." label
         evaluation.total_frames evaluation.worst_frames
         (Prcore.Cost.fits evaluation ~budget)
     in
     show "proposed" outcome.evaluation;
     List.iter
       (fun (l : Baselines.Schemes.labelled) -> show l.label l.evaluation)
       (Baselines.Schemes.all design);

     (* 5. Per-transition costs of the chosen scheme. *)
     let transition = Runtime.Transition.make outcome.scheme in
     Format.printf "@.Transition matrix (frames):@.%a" Runtime.Transition.pp
       transition)
