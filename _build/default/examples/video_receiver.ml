(* The paper's case study: a wireless video receiver (Table II) that
   adapts its filter, recovery, demodulation, decoding and video codec to
   channel conditions.

   Partitions the design for the case-study budget, validates the result
   with the columnar floorplanner on the FX70T (the paper's board), and
   reports ICAP wall-clock reconfiguration times.

   Run with: dune exec examples/video_receiver.exe *)

let () =
  let design = Prdesign.Design_library.video_receiver in
  let budget = Prdesign.Design_library.case_study_budget in
  Format.printf "Design: %s@." (Prdesign.Design.summary design);
  Format.printf "Budget: %a@.@." Fpga.Resource.pp budget;

  let outcome =
    match Prcore.Engine.solve ~target:(Prcore.Engine.Budget budget) design with
    | Ok outcome -> outcome
    | Error message -> failwith message
  in
  let scheme = outcome.scheme in
  Format.printf "Chosen partitioning:@.%s" (Prcore.Scheme.describe scheme);
  Format.printf "%a@.@." Prcore.Cost.pp_evaluation outcome.evaluation;

  (* Floorplan the reconfigurable regions (plus a pseudo-region for the
     static area). The paper floorplans on an FX70T, but the real part has
     only 128 DSP slices (16 DSP tiles) — fewer than the paper's own
     150-DSP budget — so per-region tile rounding cannot fit; the FX130T
     is the smallest catalogued device whose DSP columns suffice. *)
  let device = Fpga.Device.find_exn "FX130T" in
  let layout = Floorplan.Layout.make device in
  Format.printf "Floorplanning on %a:@.  columns: %a@." Fpga.Device.pp device
    Floorplan.Layout.pp layout;
  let demands =
    Array.init (scheme.region_count + 1) (fun i ->
        if i < scheme.region_count then
          Floorplan.Placer.demand_of_resources
            (Prcore.Scheme.region_resources scheme i)
        else
          Floorplan.Placer.demand_of_resources
            (Prcore.Scheme.static_resources scheme))
  in
  let outcome_fp = Floorplan.Placer.place layout demands in
  Array.iteri
    (fun i rect ->
      let label =
        if i < scheme.region_count then Printf.sprintf "PRR%d" (i + 1)
        else "static"
      in
      match rect with
      | Some r -> Format.printf "  %-7s -> %a@." label Floorplan.Placer.pp_rect r
      | None -> Format.printf "  %-7s -> UNPLACEABLE@." label)
    outcome_fp.placements;
  Format.printf "  device tile utilisation: %.1f%%@."
    (100. *. outcome_fp.utilisation);
  Format.printf "%s@."
    (Floorplan.Placer.render_map layout outcome_fp.placements);

  (* Wall-clock reconfiguration times through the ICAP. *)
  let icap = Fpga.Icap.make ~throughput_derate:0.95 () in
  let transition = Runtime.Transition.make ~icap scheme in
  Format.printf "ICAP model: %a@." Fpga.Icap.pp icap;
  (match Runtime.Transition.worst transition with
   | Some (i, j, frames) ->
     Format.printf "Worst transition: %s -> %s, %d frames = %.2f ms@."
       design.configurations.(i).name design.configurations.(j).name frames
       (1e3 *. Runtime.Transition.seconds transition i j)
   | None -> ());
  Format.printf "Sum over all transitions: %d frames@."
    (Runtime.Transition.total_frames transition);

  (* A short channel-adaptation scenario: degrade from clean (c1, MPEG4)
     to noisy (c4, BPSK+DPC), then recover. *)
  let scenario = [ 1; 2; 3; 6; 5; 4; 3; 0 ] in
  Format.printf "@.Channel-adaptation scenario:@.";
  let stats =
    Runtime.Manager.simulate ~icap scheme ~initial:0 ~sequence:scenario
      ~trace:(fun event ->
        Format.printf "  step %d: %s -> %s, %d frames (%.2f ms)@."
          event.step
          design.configurations.(event.from_config).name
          design.configurations.(event.to_config).name event.frames
          (1e3 *. event.seconds))
  in
  Format.printf "Scenario total: %a@." Runtime.Manager.pp_stats stats
