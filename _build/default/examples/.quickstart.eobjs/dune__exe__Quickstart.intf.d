examples/quickstart.mli:
