examples/video_receiver.mli:
