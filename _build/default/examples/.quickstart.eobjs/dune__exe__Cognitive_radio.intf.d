examples/cognitive_radio.mli:
