examples/quickstart.ml: Baselines Cluster Format Fpga List Prcore Prdesign Prgraph Runtime
