examples/design_space.ml: Array Format Fpga List Prcore Prdesign Runtime Synth Sys
