examples/synthetic_sweep.ml: Array Experiments Format List Sys
