examples/synthetic_sweep.mli:
