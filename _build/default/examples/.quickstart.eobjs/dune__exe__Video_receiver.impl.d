examples/video_receiver.ml: Array Floorplan Format Fpga Prcore Prdesign Printf Runtime
