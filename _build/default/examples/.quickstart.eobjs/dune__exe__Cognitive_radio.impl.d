examples/cognitive_radio.ml: Array Baselines Format Fpga List Prcore Prdesign Runtime Synth
