(* An adaptive cognitive radio, the application class that motivates the
   paper (its introduction cites an LTE/GSM spectrum-sensing radio that
   switches between sensing and transmission without keeping both circuits
   resident).

   The radio has four reconfigurable modules:
     SEN - spectrum sensing (energy detector / cyclostationary detector)
     MOD - modem (BPSK / QPSK / QAM64)
     CHN - channelizer (narrowband / wideband)
     COD - channel coder (convolutional / LDPC / none)
   Sensing and transmission are mutually exclusive: sensing configurations
   carry no modem, transmission configurations carry no sensor — exactly
   the "modules absent from configurations" situation of paper §IV-D.

   Run with: dune exec examples/cognitive_radio.exe *)

let radio =
  let res = Fpga.Resource.make in
  let m name modes = Prdesign.Pmodule.make name modes in
  let mode name r = Prdesign.Mode.make name r in
  let modules =
    [ m "SEN"
        [ mode "energy" (res 450 ~bram:4 ~dsp:8);
          mode "cyclo" (res 1800 ~bram:12 ~dsp:36) ];
      m "MOD"
        [ mode "bpsk" (res 300 ~dsp:4);
          mode "qpsk" (res 420 ~dsp:8);
          mode "qam64" (res 980 ~dsp:24) ];
      m "CHN"
        [ mode "narrow" (res 600 ~bram:2 ~dsp:12);
          mode "wide" (res 1500 ~bram:8 ~dsp:48) ];
      m "COD"
        [ mode "conv" (res 350 ~bram:2);
          mode "ldpc" (res 1400 ~bram:18 ~dsp:6) ] ]
  in
  let c name choices = Prdesign.Configuration.make name choices in
  (* Module indices: SEN=0 MOD=1 CHN=2 COD=3. *)
  let configurations =
    [ c "sense-fast" [ (0, 0); (2, 0) ];
      c "sense-deep" [ (0, 1); (2, 1) ];
      c "tx-robust" [ (1, 0); (2, 0); (3, 0) ];
      c "tx-normal" [ (1, 1); (2, 0); (3, 0) ];
      c "tx-high" [ (1, 2); (2, 1); (3, 1) ];
      c "tx-burst" [ (1, 2); (2, 1); (3, 0) ] ]
  in
  Prdesign.Design.create_exn ~name:"cognitive-radio"
    ~static_overhead:(res 90 ~bram:8) ~modules ~configurations ()

let () =
  Format.printf "Design: %s@.@." (Prdesign.Design.summary radio);

  (* Let the engine pick the smallest suitable Virtex-5. *)
  let outcome =
    match Prcore.Engine.solve ~target:Prcore.Engine.Auto radio with
    | Ok outcome -> outcome
    | Error message -> failwith message
  in
  (match outcome.device with
   | Some device ->
     Format.printf "Selected device: %a (escalations: %d)@." Fpga.Device.pp
       device outcome.escalations
   | None -> ());
  Format.printf "%s" (Prcore.Scheme.describe outcome.scheme);
  Format.printf "%a@.@." Prcore.Cost.pp_evaluation outcome.evaluation;

  (* Compare with the baselines. *)
  List.iter
    (fun (l : Baselines.Schemes.labelled) ->
      Format.printf "  %-18s total %8d, worst %6d frames@." l.label
        l.evaluation.total_frames l.evaluation.worst_frames)
    (Baselines.Schemes.all radio);
  Format.printf "  %-18s total %8d, worst %6d frames@.@." "proposed"
    outcome.evaluation.total_frames outcome.evaluation.worst_frames;

  (* A day in the life: long random adaptation walk driven by "channel
     conditions" (uniform here; the paper notes transition probabilities
     as future work). *)
  let rng = Synth.Rng.make 42 in
  let sequence =
    Runtime.Manager.random_walk
      ~rand:(fun n -> Synth.Rng.int rng n)
      ~configs:(Prdesign.Design.configuration_count radio)
      ~steps:10_000 ~initial:0
  in
  let icap = Fpga.Icap.make ~overhead_s:20e-6 () in
  let stats = Runtime.Manager.simulate ~icap outcome.scheme ~initial:0 ~sequence in
  Format.printf "10k-step adaptation walk: %a@." Runtime.Manager.pp_stats stats;
  Array.iteri
    (fun r loads -> Format.printf "  PRR%d reconfigured %d times@." (r + 1) loads)
    stats.region_loads;

  (* The same walk on the one-module-per-region baseline, for contrast. *)
  let modular = (Baselines.Schemes.one_module_per_region radio).scheme in
  let stats_modular =
    Runtime.Manager.simulate ~icap modular ~initial:0 ~sequence
  in
  Format.printf "same walk, 1 module/region: %a@." Runtime.Manager.pp_stats
    stats_modular
