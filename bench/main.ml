(* Experiment harness: regenerates every table and figure of the paper's
   evaluation section (see DESIGN.md's experiment index), plus ablations
   and a Bechamel performance suite.

   Usage: main.exe [experiment ...]
   where experiment is one of: table1 table2 table3 table4 table5 fig7
   fig8 fig9 stats ablate proxy serve perf bench-json bench-compare all
   (default: all). bench-json appends its metrics to
   BENCH_history.jsonl; bench-compare diffs the two most recent entries
   and exits non-zero on a regression (`make perf-compare`).

   The synthetic sweep honours PRPART_SWEEP_COUNT (default 1000) and
   PRPART_SWEEP_SEED (default 2013) so CI can run a reduced population. *)

let section title =
  Printf.printf "\n================ %s ================\n%!" title

let sweep_count () =
  match Sys.getenv_opt "PRPART_SWEEP_COUNT" with
  | Some v -> (match int_of_string_opt v with Some n when n > 0 -> n | _ -> 1000)
  | None -> 1000

let sweep_seed () =
  match Sys.getenv_opt "PRPART_SWEEP_SEED" with
  | Some v -> (match int_of_string_opt v with Some n -> n | None -> 2013)
  | None -> 2013

(* The sweep feeds Figs. 7-9 and the stats block; run it once, lazily. *)
let sweep_rows =
  lazy
    (let count = sweep_count () and seed = sweep_seed () in
     Printf.printf "[sweep: %d synthetic designs, seed %d]\n%!" count seed;
     let t0 = Sys.time () in
     let rows = Experiments.Sweep.run ~count ~seed () in
     Printf.printf "[sweep finished in %.1fs CPU]\n%!" (Sys.time () -. t0);
     (rows, count - List.length rows))

let table1 () =
  section "Table I: base partitions of the running example";
  let t = Experiments.Case_study.Table1.run () in
  print_string (Experiments.Case_study.Table1.render t)

let table2 () =
  section "Table II: video receiver resource utilisation";
  let d = Experiments.Case_study.Table2.run () in
  print_string (Experiments.Case_study.Table2.render d)

let table3_4 = lazy (Experiments.Case_study.Table3_4.run ())

let table3 () =
  section "Table III: partitions determined by the algorithm";
  print_string
    (Experiments.Case_study.Table3_4.render_partitions (Lazy.force table3_4))

let table4 () =
  section "Table IV: properties of the partitioning schemes";
  print_string
    (Experiments.Case_study.Table3_4.render_comparison (Lazy.force table3_4))

let table5 () =
  section "Table V: partitions for the modified configurations";
  print_string (Experiments.Case_study.Table5.render (Experiments.Case_study.Table5.run ()))

let fig7 () =
  section "Fig. 7: total reconfiguration time by target FPGA";
  let rows, _ = Lazy.force sweep_rows in
  print_string (Experiments.Sweep.render_fig ~metric:`Total rows)

let fig8 () =
  section "Fig. 8: worst-case reconfiguration time by target FPGA";
  let rows, _ = Lazy.force sweep_rows in
  print_string (Experiments.Sweep.render_fig ~metric:`Worst rows)

let fig9 () =
  section "Fig. 9: percentage-change histograms";
  let rows, _ = Lazy.force sweep_rows in
  print_string (Experiments.Sweep.render_fig9 rows)

let stats () =
  section "Headline statistics (paper Section V)";
  let rows, skipped = Lazy.force sweep_rows in
  print_string
    (Experiments.Sweep.render_summary (Experiments.Sweep.summarise ~skipped rows))

let ablate () =
  section "Ablation: frequency-weight rule";
  print_string
    (Experiments.Ablation.render_variants ~header:"support vs min-edge"
       (Experiments.Ablation.frequency_rule ()));
  section "Ablation: static promotion";
  print_string
    (Experiments.Ablation.render_variants ~header:"promotion on vs off"
       (Experiments.Ablation.static_promotion ()));
  section "Ablation: allocator restart budget";
  print_string
    (Experiments.Ablation.render_variants ~header:"restart budget"
       (Experiments.Ablation.restart_budget ()))

let proxy () =
  section "Ablation: pairwise metric vs runtime simulation";
  print_string
    (Experiments.Ablation.render_proxy
       (Experiments.Ablation.proxy_vs_simulation ()))

let sensitivity () =
  section "Sensitivity: workload-recipe parameters";
  print_string
    (Experiments.Sensitivity.render ~title:"absence probability"
       (Experiments.Sensitivity.absence_probability ()));
  print_newline ();
  print_string
    (Experiments.Sensitivity.render ~title:"design size"
       (Experiments.Sensitivity.design_size ()));
  print_newline ();
  print_string
    (Experiments.Sensitivity.render ~title:"configuration count"
       (Experiments.Sensitivity.configuration_count ()))

let cache () =
  section "Ablation: bitstream fetch path and on-chip cache";
  print_string
    (Experiments.Ablation.render_cache (Experiments.Ablation.fetch_cache ()))

let arch () =
  section "What-if: neighbouring architecture generations";
  print_string
    (Experiments.Ablation.render_arch
       (Experiments.Ablation.cross_architecture ()))

let gap () =
  section "Ablation: greedy vs exact allocation (optimality gap)";
  print_string
    (Experiments.Ablation.render_gap (Experiments.Ablation.optimality_gap ()))

let weighted () =
  section "Extension: transition-probability-weighted objective";
  print_string
    (Experiments.Ablation.render_weighted
       (Experiments.Ablation.weighted_objective ()))

let faults () =
  section "Robustness: fault-injection sweep over the reference schemes";
  print_string (Experiments.Faults.render_sweep (Experiments.Faults.sweep ()));
  print_newline ();
  print_string
    (Experiments.Faults.render_policies (Experiments.Faults.policies ()))

(* Fault-injection smoke for the test suite (--quick): a scripted fault
   schedule with a fixed seed must (1) leave the fault-free statistics
   bit-for-bit identical to Manager.simulate, (2) inject exactly the
   scheduled faults and recover them all, and (3) replay to an
   identical reliability report. Exits 1 on any mismatch. *)
let fault_smoke () =
  section "Fault smoke: scripted schedule, fixed seed, golden report";
  let fail fmt =
    Printf.ksprintf
      (fun m ->
        Printf.printf "FAULT SMOKE FAILED: %s\n" m;
        exit 1)
      fmt
  in
  let receiver = Prdesign.Design_library.video_receiver in
  let scheme =
    match
      Prcore.Engine.solve
        ~target:(Prcore.Engine.Budget Prdesign.Design_library.case_study_budget)
        receiver
    with
    | Ok o -> o.Prcore.Engine.scheme
    | Error message -> fail "case-study solve: %s" message
  in
  let rng = Synth.Rng.make 5 in
  let sequence =
    Runtime.Manager.random_walk
      ~rand:(fun n -> Synth.Rng.int rng n)
      ~configs:(Prdesign.Design.configuration_count receiver)
      ~steps:40 ~initial:0
  in
  (* (1) Inactive injector: bit-for-bit equal to the plain simulator. *)
  let plain = Runtime.Manager.simulate scheme ~initial:0 ~sequence in
  (match Runtime.Resilient.simulate scheme ~initial:0 ~sequence with
   | Error _ -> fail "inactive injector must not fail"
   | Ok o ->
     if o.Runtime.Resilient.stats <> plain then
       fail "inactive injector diverged from Manager.simulate");
  (* (2) Scripted schedule: exactly these operations fault, all recover. *)
  (* Operations alternate fetch/program per load attempt and a faulted
     attempt replays both, so with a fault-free prefix in mind:
     op 0 fetch (timeout) -> 1 fetch, 2 program; 3 fetch, 4 program
     (CRC) -> 5 fetch, 6 program; 7 fetch (corrupt) -> 8 fetch,
     9 program; 10 fetch, 11 program (SEU) -> 12 fetch, 13 program;
     14 fetch, 15 program (busy) -> 16 fetch, 17 program. *)
  let schedule =
    [ (0, Prfault.Injector.Fetch_timeout);
      (4, Prfault.Injector.Icap_crc_error);
      (7, Prfault.Injector.Corrupt_bitstream);
      (11, Prfault.Injector.Seu_upset);
      (15, Prfault.Injector.Device_busy) ]
  in
  let fault =
    { Runtime.Resilient.default_config with
      spec = { Prfault.Injector.disabled with seed = 42; schedule } }
  in
  let run () =
    match
      Runtime.Resilient.simulate ~memory:Runtime.Fetch.flash ~fault scheme
        ~initial:0 ~sequence
    with
    | Ok o -> o
    | Error f ->
      fail "scheduled faults must recover: %s"
        (Runtime.Resilient.render_failure f)
  in
  let o = run () in
  let r = o.Runtime.Resilient.reliability in
  if r.Prfault.Reliability.total_faults <> List.length schedule then
    fail "expected %d faults, saw %d" (List.length schedule)
      r.Prfault.Reliability.total_faults;
  List.iter
    (fun (kind, expected) ->
      let seen = List.assoc kind r.Prfault.Reliability.faults_by_kind in
      if seen <> expected then
        fail "expected %d %s faults, saw %d" expected
          (Prfault.Injector.kind_name kind)
          seen)
    [ (Prfault.Injector.Fetch_timeout, 1);
      (Prfault.Injector.Corrupt_bitstream, 1);
      (Prfault.Injector.Icap_crc_error, 1);
      (Prfault.Injector.Seu_upset, 1);
      (Prfault.Injector.Device_busy, 1) ];
  if r.Prfault.Reliability.recovered_loads <> List.length schedule then
    fail "expected every scheduled fault recovered";
  if
    r.Prfault.Reliability.failed_loads <> 0
    || r.Prfault.Reliability.dropped_transitions <> 0
    || not r.Prfault.Reliability.completed
  then fail "scheduled run must complete without degradation";
  if r.Prfault.Reliability.added_seconds <= 0. then
    fail "recovery must add latency";
  (* (3) Determinism: the golden report replays identically. *)
  let r' = (run ()).Runtime.Resilient.reliability in
  if not (Prfault.Reliability.equal r r') then
    fail "two runs of the same seed produced different reliability reports";
  print_string (Prfault.Reliability.render r);
  Printf.printf "fault smoke OK (%d ops, %d faults, deterministic)\n"
    o.Runtime.Resilient.operations r.Prfault.Reliability.total_faults

(* Telemetry: per-phase timings of the case-study solve, plus the
   overhead of the three handle operating points (dead null handle,
   counting-only over the null sink, full tracing over a memory sink). *)
let telemetry ?(quick = false) () =
  section "Telemetry: per-phase timings of the case-study solve";
  let receiver = Prdesign.Design_library.video_receiver in
  let target =
    Prcore.Engine.Budget Prdesign.Design_library.case_study_budget
  in
  let tele = Prtelemetry.create (Prtelemetry.Sink.memory ()) in
  (match Prcore.Engine.solve ~telemetry:tele ~target receiver with
   | Ok outcome ->
     Printf.printf "cost evaluations: %d\n" outcome.Prcore.Engine.cost_evaluations
   | Error message -> Printf.printf "solve failed: %s\n" message);
  Prtelemetry.flush tele;
  Printf.printf "trace events: %d\n" (List.length (Prtelemetry.events tele));
  print_string (Prtelemetry.summary tele);
  let reps = if quick then 2 else 25 in
  let time f =
    let t0 = Sys.time () in
    for _ = 1 to reps do
      f ()
    done;
    Sys.time () -. t0
  in
  let solve tele () =
    ignore (Prcore.Engine.solve ~telemetry:tele ~target receiver)
  in
  (* Warm up allocators and caches before the comparison. *)
  solve Prtelemetry.null ();
  let base = time (solve Prtelemetry.null) in
  let counting =
    time (fun () -> solve (Prtelemetry.create Prtelemetry.Sink.null) ())
  in
  let tracing =
    time (fun () ->
        solve (Prtelemetry.create (Prtelemetry.Sink.memory ())) ())
  in
  let pct x = if base > 0. then 100. *. (x -. base) /. base else 0. in
  Printf.printf "handle overhead over %d case-study solves:\n" reps;
  Printf.printf "  null handle           %8.3fs (baseline)\n" base;
  Printf.printf "  counting (null sink)  %8.3fs (%+.1f%%)\n" counting
    (pct counting);
  Printf.printf "  tracing (memory sink) %8.3fs (%+.1f%%)\n" tracing
    (pct tracing)

(* Shared Bechamel harness: OLS ns/run estimate of one staged thunk. *)
let bechamel_ns test =
  let open Bechamel in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results =
    Benchmark.all cfg instances (Test.make_grouped ~name:"" [ test ])
  in
  let analysed = Analyze.all ols (List.hd instances) results in
  let estimate = ref nan in
  Hashtbl.iter
    (fun _ r ->
      match Analyze.OLS.estimates r with
      | Some [ v ] -> estimate := v
      | Some _ | None -> ())
    analysed;
  !estimate

(* Prspeed smoke (runs under --quick, so `dune runtest` gates on it):
   (1) a tiny sweep with --jobs 2 must be bit-identical to the
   sequential one, (2) the parallel case-study solve must equal the
   sequential solve, and (3) the case-study solve must exercise the
   evaluation cache (perf.cache_hits > 0) and the delta kernels
   (perf.delta_evals > 0). Exits 1 on any violation. *)
let prspeed_smoke () =
  section "Prspeed smoke: parallel determinism + cache effectiveness";
  let fail fmt =
    Printf.ksprintf
      (fun m ->
        Printf.printf "PRSPEED SMOKE FAILED: %s\n" m;
        exit 1)
      fmt
  in
  let sweep_n = 6 in
  let seq = Experiments.Sweep.run ~count:sweep_n ~jobs:1 () in
  let par = Experiments.Sweep.run ~count:sweep_n ~jobs:2 () in
  if seq <> par then fail "parallel sweep diverged from the sequential one";
  let receiver = Prdesign.Design_library.video_receiver in
  let target =
    Prcore.Engine.Budget Prdesign.Design_library.case_study_budget
  in
  let tele = Prtelemetry.create Prtelemetry.Sink.null in
  let solve ?telemetry ?jobs () =
    match Prcore.Engine.solve ?telemetry ?jobs ~target receiver with
    | Ok o -> o
    | Error m -> fail "case-study solve: %s" m
  in
  let a = solve ~telemetry:tele () in
  let b = solve ~jobs:2 () in
  if
    Prcore.Memo.scheme_signature a.Prcore.Engine.scheme
    <> Prcore.Memo.scheme_signature b.Prcore.Engine.scheme
    || a.Prcore.Engine.evaluation <> b.Prcore.Engine.evaluation
    || a.Prcore.Engine.cost_evaluations <> b.Prcore.Engine.cost_evaluations
  then fail "parallel case-study solve diverged from the sequential one";
  let hits = Prtelemetry.counter_value tele "perf.cache_hits" in
  let deltas = Prtelemetry.counter_value tele "perf.delta_evals" in
  if hits <= 0 then fail "case-study solve recorded no cache hits";
  if deltas <= 0 then fail "case-study solve recorded no delta evaluations";
  Printf.printf
    "prspeed smoke OK (%d-design sweep and case-study solve identical \
     across jobs; %d cache hits, %d delta evals)\n"
    sweep_n hits deltas

(* Prverify smoke (runs under --quick, so `dune runtest` gates on it):
   (1) every library design passes the independent design oracle,
   (2) the case-study solve passes check-after-solve with zero errors,
   (3) every seeded mutation is killed by exactly its expected
   diagnostic code, and (4) a small differential fuzz run is clean.
   Exits 1 on any violation. *)
let verify_smoke () =
  section "Prverify smoke: oracles, mutation kills, differential fuzz";
  let fail fmt =
    Printf.ksprintf
      (fun m ->
        Printf.printf "PRVERIFY SMOKE FAILED: %s\n" m;
        exit 1)
      fmt
  in
  List.iter
    (fun (name, design) ->
      let diagnostics = Prverify.Checker.check_design design in
      if not (Prverify.Diagnostic.ok diagnostics) then
        fail "design oracle rejected %s:\n%s" name
          (Prverify.Checker.render_report diagnostics))
    Prdesign.Design_library.all;
  let receiver = Prdesign.Design_library.video_receiver in
  let outcome =
    match
      Prcore.Engine.solve ~verify:true
        ~target:(Prcore.Engine.Budget Prdesign.Design_library.case_study_budget)
        receiver
    with
    | Ok o -> o
    | Error m -> fail "verified case-study solve: %s" m
  in
  let diagnostics = Prverify.Checker.check_outcome outcome in
  if not (Prverify.Diagnostic.ok diagnostics) then
    fail "check-after-solve rejected the case study:\n%s"
      (Prverify.Checker.render_report diagnostics);
  let kills = Prverify.Fuzz.mutation_kills () in
  if not (Prverify.Fuzz.all_killed kills) then
    fail "a seeded mutation survived:\n%s" (Prverify.Fuzz.render_kills kills);
  let fuzz = Prverify.Fuzz.run ~count:25 ~seed:41 () in
  if fuzz.Prverify.Fuzz.failures <> [] then
    fail "differential fuzz diverged:\n%s"
      (Prverify.Fuzz.render_summary fuzz);
  Printf.printf
    "prverify smoke OK (%d library designs, case-study %s, %d/%d \
     mutations killed, %d-design fuzz clean)\n"
    (List.length Prdesign.Design_library.all)
    (String.trim (Prverify.Checker.summary_line diagnostics))
    (List.length kills) (List.length kills) fuzz.Prverify.Fuzz.designs

(* The full verification experiment: oracle pass over the library, the
   seeded mutation-kill matrix, and a larger differential fuzz run. *)
let verify () =
  section "Prverify: mutation-kill matrix and differential fuzz";
  let kills = Prverify.Fuzz.mutation_kills () in
  print_string (Prverify.Fuzz.render_kills kills);
  print_newline ();
  let fuzz = Prverify.Fuzz.run ~count:150 ~seed:2013 () in
  print_string (Prverify.Fuzz.render_summary fuzz)

(* Fresh scratch directory for the crash-recovery exercises. *)
let guard_scratch_dir () =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "prguard-bench-%d-%.0f" (Unix.getpid ())
         (Unix.gettimeofday () *. 1e6))
  in
  (match Prguard.Atomic_io.mkdir_p dir with
  | Ok () -> ()
  | Error m ->
    Printf.printf "cannot create scratch dir %s: %s\n" dir m;
    exit 1);
  dir

(* Write an artefact with a sidecar, tear it with a raw overwrite, and
   check that [Prguard.recover] quarantines it and that a second pass is
   clean.  Returns [true] on a full round trip. *)
let guard_recovery_roundtrip () =
  let checksum = Bitgen.Crc32.hex_digest in
  let dir = guard_scratch_dir () in
  let path = Filename.concat dir "artefact.bit" in
  let ok =
    match Prguard.Atomic_io.write ~checksum ~path "frame-data-0123456789" with
    | Error _ -> false
    | Ok () -> (
      (* Torn write: clobber the payload behind the sidecar's back. *)
      let oc = open_out path in
      output_string oc "torn";
      close_out oc;
      match Prguard.recover ~checksum ~dir () with
      | Error _ -> false
      | Ok first -> (
        (not (Prguard.Atomic_io.clean first))
        && List.length first.Prguard.Atomic_io.quarantined = 2
        &&
        match Prguard.recover ~checksum ~dir () with
        | Error _ -> false
        | Ok second -> Prguard.Atomic_io.clean second))
  in
  ok

(* Prguard smoke (runs under --quick, so `dune runtest` gates on it):
   (1) an eval-capped case-study solve must degrade gracefully — still
   feasible, flagged as guarded+degraded, and bit-reproducible across
   runs, (2) a generous cap must coincide with the uncapped solve whose
   verdict must be unguarded, and (3) a torn artefact must be detected
   and quarantined by [Prguard.recover].  Exits 1 on any violation. *)
let guard_smoke () =
  section "Prguard smoke: anytime degradation + crash recovery";
  let fail fmt =
    Printf.ksprintf
      (fun m ->
        Printf.printf "PRGUARD SMOKE FAILED: %s\n" m;
        exit 1)
      fmt
  in
  let receiver = Prdesign.Design_library.video_receiver in
  let target =
    Prcore.Engine.Budget Prdesign.Design_library.case_study_budget
  in
  let solve ?budget () =
    match Prcore.Engine.solve ?budget ~target receiver with
    | Ok o -> o
    | Error m -> fail "case-study solve: %s" m
  in
  let capped () = solve ~budget:(Prguard.Budget.make ~max_evals:400 ()) () in
  let a = capped () in
  let v = a.Prcore.Engine.degraded in
  if not (v.Prguard.Budget.guarded && v.Prguard.Budget.degraded) then
    fail "eval-capped solve did not report a guarded, degraded verdict";
  if v.Prguard.Budget.reason <> Prguard.Budget.Eval_cap then
    fail "eval-capped solve expired for %s, not the eval cap"
      (Prguard.Budget.reason_name v.Prguard.Budget.reason);
  if
    not
      (Prcore.Cost.fits a.Prcore.Engine.evaluation
         ~budget:a.Prcore.Engine.budget)
  then fail "eval-capped solve returned an infeasible scheme";
  let b = capped () in
  if
    a.Prcore.Engine.evaluation <> b.Prcore.Engine.evaluation
    || a.Prcore.Engine.cost_evaluations <> b.Prcore.Engine.cost_evaluations
  then fail "eval-capped solve is not reproducible";
  let unlimited = solve () in
  if unlimited.Prcore.Engine.degraded.Prguard.Budget.guarded then
    fail "unguarded solve reported a guarded verdict";
  let huge = solve ~budget:(Prguard.Budget.make ~max_evals:100_000_000 ()) () in
  if
    Prcore.Memo.scheme_signature huge.Prcore.Engine.scheme
    <> Prcore.Memo.scheme_signature unlimited.Prcore.Engine.scheme
    || huge.Prcore.Engine.evaluation <> unlimited.Prcore.Engine.evaluation
  then fail "a generous eval cap changed the uncapped answer";
  if not (guard_recovery_roundtrip ()) then
    fail "torn-artefact recovery round trip failed";
  Printf.printf
    "prguard smoke OK (capped solve feasible+reproducible at %d evals, \
     generous cap bit-identical, torn artefact quarantined)\n"
    v.Prguard.Budget.evals_used

(* The full guard experiment: anytime quality under shrinking evaluation
   caps, the default degradation ladder, and a short wall-clock
   deadline — the robustness analogue of the paper's quality tables. *)
let guard () =
  section "Prguard: anytime quality under budgets";
  let receiver = Prdesign.Design_library.video_receiver in
  let target =
    Prcore.Engine.Budget Prdesign.Design_library.case_study_budget
  in
  let solve ?budget ?ladder () =
    match Prcore.Engine.solve ?budget ?ladder ~target receiver with
    | Ok o -> Some o
    | Error m ->
      Printf.printf "  solve failed: %s\n" m;
      None
  in
  let describe label = function
    | None -> ()
    | Some o ->
      Printf.printf "%-14s %6d frames  %7d evals  %s\n" label
        o.Prcore.Engine.evaluation.Prcore.Cost.total_frames
        o.Prcore.Engine.cost_evaluations
        (Prguard.Budget.render_verdict o.Prcore.Engine.degraded)
  in
  Printf.printf "case study (video receiver), eval-cap sweep:\n";
  List.iter
    (fun cap ->
      describe
        (Printf.sprintf "cap %d" cap)
        (solve ~budget:(Prguard.Budget.make ~max_evals:cap ()) ()))
    [ 100; 300; 1000; 3000; 10000 ];
  describe "uncapped" (solve ());
  Printf.printf "\ndegradation ladder and wall-clock deadline:\n";
  describe "ladder" (solve ~ladder:Prguard.Ladder.default ());
  describe "deadline 50ms"
    (solve ~budget:(Prguard.Budget.make ~deadline_ms:50. ()) ());
  Printf.printf "\ntorn-artefact recovery round trip: %s\n"
    (if guard_recovery_roundtrip () then "ok" else "FAILED")

(* ------------------------------------------------------------------ *)
(* Prscale: the multilevel backend on huge designs (DESIGN.md §12).
   Shared by the [multilevel] experiment, the bench-json "multilevel"
   section and the --quick smoke. *)

(* A feasible-but-tight resource budget for a synthetic design,
   anchored on the one-module-per-region reference: that is the usage
   floor of mode-granular partitioning (each region sized for its
   module's largest mode), so [headroom] times it is satisfiable by a
   well-packed scheme while still forcing real partitioning
   decisions. *)
let huge_budget ?(headroom = 1.3) design =
  let used =
    (Prcore.Cost.evaluate (Prcore.Scheme.one_module_per_region design))
      .Prcore.Cost.used
  in
  let scale v = int_of_float (Float.ceil (headroom *. float_of_int v)) in
  Fpga.Resource.make
    ~bram:(scale used.Fpga.Resource.bram)
    ~dsp:(scale used.Fpga.Resource.dsp)
    (scale used.Fpga.Resource.clb)

let huge_seed = 2013
let huge_modules = 200

let huge_design =
  lazy (Synth.Generator.huge ~seed:huge_seed ~modules:huge_modules ())

type ml_report = {
  mr_ms : float;  (* end-to-end Engine.solve wall time *)
  mr_total : int;
  mr_feasible : bool;
  mr_oracle_clean : bool;
  mr_stats : Prcore.Multilevel.stats;
}

(* The headline Prscale run: the seeded 200-module huge design solved
   end-to-end through the engine with [strategy = Multilevel], checked
   feasible and oracle-clean, plus one direct [allocate_stats] pass for
   the V-cycle statistics (deterministic, so both runs see the same
   search). *)
let multilevel_huge_run () =
  let design = Lazy.force huge_design in
  let budget = huge_budget design in
  let t0 = Unix.gettimeofday () in
  let outcome =
    match
      Prcore.Engine.solve ~strategy:Prcore.Strategy.Multilevel
        ~target:(Prcore.Engine.Budget budget) design
    with
    | Ok o -> o
    | Error m ->
      Printf.printf "BENCH FAILED: multilevel huge solve: %s\n" m;
      exit 1
  in
  let ms = 1000. *. (Unix.gettimeofday () -. t0) in
  let feasible =
    Prcore.Cost.fits outcome.Prcore.Engine.evaluation
      ~budget:outcome.Prcore.Engine.budget
  in
  let oracle_clean =
    Prverify.Checker.ok (Prverify.Checker.check_outcome outcome)
  in
  let _, stats =
    Prcore.Multilevel.allocate_stats ~budget design
      (Prcore.Multilevel.nodes design)
  in
  { mr_ms = ms;
    mr_total = outcome.Prcore.Engine.evaluation.Prcore.Cost.total_frames;
    mr_feasible = feasible;
    mr_oracle_clean = oracle_clean;
    mr_stats = stats }

(* Quality gap of the multilevel scheme against an eval-capped anneal
   on a small huge-class design — the largest size where the default
   pipeline's clustering front-end still terminates un-deadlined, so
   the comparison is apples-to-apples and the eval cap keeps it
   deterministic. Positive = multilevel is worse. *)
let multilevel_gap_vs_anneal () =
  let design = Synth.Generator.huge ~seed:huge_seed ~modules:14 () in
  let target = Prcore.Engine.Budget (huge_budget design) in
  let solve strategy budget =
    match Prcore.Engine.solve ~strategy ?budget ~target design with
    | Ok o -> Some o.Prcore.Engine.evaluation.Prcore.Cost.total_frames
    | Error _ -> None
  in
  let ml = solve Prcore.Strategy.Multilevel None in
  let anneal =
    solve Prcore.Strategy.Anneal
      (Some (Prguard.Budget.make ~max_evals:50_000 ()))
  in
  match (ml, anneal) with
  | Some ml, Some anneal when anneal > 0 ->
    Some (100. *. float_of_int (ml - anneal) /. float_of_int anneal)
  | _ -> None

(* The [multilevel] experiment: the scaling story in one table — on the
   200-module design, exact and anneal expire a 2 s deadline while the
   multilevel backend finishes well inside the 10 s acceptance bound,
   feasible and oracle-clean. *)
let multilevel_experiment () =
  section "Prscale: multilevel backend on 50-500-module designs";
  let design = Lazy.force huge_design in
  let budget = huge_budget design in
  let target = Prcore.Engine.Budget budget in
  Printf.printf "design: %s (%d modules, %d configurations)\n"
    design.Prdesign.Design.name
    (Prdesign.Design.module_count design)
    (Prdesign.Design.configuration_count design);
  let timed_solve label strategy guard =
    let t0 = Unix.gettimeofday () in
    let result = Prcore.Engine.solve ~strategy ?budget:guard ~target design in
    let ms = 1000. *. (Unix.gettimeofday () -. t0) in
    (match result with
     | Ok o ->
       Printf.printf "%-24s %8.0f ms  %7d frames  %s\n" label ms
         o.Prcore.Engine.evaluation.Prcore.Cost.total_frames
         (Prguard.Budget.render_verdict o.Prcore.Engine.degraded)
     | Error m ->
       Printf.printf "%-24s %8.0f ms  no feasible scheme (%s)\n" label ms
         (String.concat " " (String.split_on_char '\n' m)));
    result
  in
  let deadline () = Prguard.Budget.make ~deadline_ms:2000. () in
  ignore (timed_solve "exact (2s deadline)" Prcore.Strategy.Exact
            (Some (deadline ())));
  ignore (timed_solve "anneal (2s deadline)" Prcore.Strategy.Anneal
            (Some (deadline ())));
  let r = multilevel_huge_run () in
  Printf.printf "%-24s %8.0f ms  %7d frames  feasible=%b oracle=%s\n"
    "multilevel (unguarded)" r.mr_ms r.mr_total r.mr_feasible
    (if r.mr_oracle_clean then "clean" else "VIOLATED");
  Printf.printf
    "v-cycle: %d levels, %d merges, %d refinement passes, %d moves \
     (%d trials)\n"
    r.mr_stats.Prcore.Multilevel.levels r.mr_stats.Prcore.Multilevel.merges
    r.mr_stats.Prcore.Multilevel.passes r.mr_stats.Prcore.Multilevel.moves
    r.mr_stats.Prcore.Multilevel.trials;
  (match
     ( r.mr_stats.Prcore.Multilevel.first_feasible_total,
       r.mr_stats.Prcore.Multilevel.final_total )
   with
   | Some first, Some final ->
     Printf.printf "refinement: %d -> %d frames (monotone: %b)\n" first final
       (final <= first)
   | _ -> ());
  (match multilevel_gap_vs_anneal () with
   | Some gap ->
     Printf.printf "gap vs eval-capped anneal (14 modules): %+.1f%%\n" gap
   | None -> Printf.printf "gap vs anneal: not comparable\n");
  if not (r.mr_feasible && r.mr_oracle_clean) then begin
    Printf.printf "BENCH FAILED: multilevel huge solve invariants violated\n";
    exit 1
  end

(* Prscale smoke (runs under --quick, so `dune runtest` gates on it): a
   tiny huge-class design must be solved by every strategy, each
   outcome oracle-clean, and the multilevel backend bit-identical
   across jobs 1/2/4. Exits 1 on violation. *)
let multilevel_smoke () =
  section "Prscale smoke: every strategy on a tiny huge-class design";
  let fail fmt =
    Printf.ksprintf
      (fun m ->
        Printf.printf "PRSCALE SMOKE FAILED: %s\n" m;
        exit 1)
      fmt
  in
  let design = Synth.Generator.huge ~seed:7 ~modules:12 () in
  let target = Prcore.Engine.Budget (huge_budget design) in
  (* Eval-capped so the exhaustive backends truncate deterministically
     instead of dominating the smoke's wall clock. *)
  let capped () = Prguard.Budget.make ~max_evals:50_000 () in
  let outcomes =
    List.map
      (fun strategy ->
        match Prcore.Engine.solve ~strategy ~budget:(capped ()) ~target design with
        | Ok o -> (strategy, o)
        | Error m ->
          fail "%s strategy failed on the tiny huge-class design: %s"
            (Prcore.Strategy.to_string strategy) m)
      Prcore.Strategy.all
  in
  List.iter
    (fun (strategy, o) ->
      let report = Prverify.Checker.check_outcome o in
      if not (Prverify.Checker.ok report) then
        fail "%s outcome violates the oracle:\n%s"
          (Prcore.Strategy.to_string strategy)
          (Prverify.Checker.render_report report))
    outcomes;
  let ml_eval jobs =
    match
      Prcore.Engine.solve ~strategy:Prcore.Strategy.Multilevel
        ~budget:(capped ()) ~jobs ~target design
    with
    | Ok o -> o.Prcore.Engine.evaluation
    | Error m -> fail "multilevel jobs=%d: %s" jobs m
  in
  let e1 = ml_eval 1 in
  List.iter
    (fun jobs ->
      if not (Prcore.Cost.equal_evaluation e1 (ml_eval jobs)) then
        fail "multilevel diverges between jobs=1 and jobs=%d" jobs)
    [ 2; 4 ];
  Printf.printf
    "prscale smoke OK (%d strategies solved %s, oracle-clean, multilevel \
     bit-identical across jobs 1/2/4)\n"
    (List.length outcomes)
    (let d = Synth.Generator.huge ~seed:7 ~modules:12 () in
     d.Prdesign.Design.name)

(* Prserve load generation: an in-process daemon driven by concurrent
   client threads over a duplicate-heavy request mix.  Shared by the
   [serve] soak experiment, the bench-json "serve" section and the
   --quick smoke. *)

let str_contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec scan i =
    if i + nl > hl then false
    else if String.sub haystack i nl = needle then true
    else scan (i + 1)
  in
  scan 0

let str_starts prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let design_one_line d =
  String.map
    (fun c -> if c = '\n' || c = '\r' then ' ' else c)
    (Prdesign.Design_xml.to_string d)

let serve_designs ?(count = 8) () =
  let lib =
    List.filter_map Prdesign.Design_library.find
      [ "running-example"; "video-receiver" ]
  in
  lib
  @ List.map snd
      (Synth.Generator.batch ~seed:7 ~count:(max 1 (count - List.length lib))
         ())

type serve_load_stats = {
  sl_requests : int;
  sl_ok : int;
  sl_cached : int;
  sl_rejected : int;
  sl_errors : int;
  sl_wall_s : float;
  sl_qps : float;
  sl_p50_ms : float;
  sl_p99_ms : float;
  sl_hit_rate : float;
}

(* Each client walks its own slice of the design list with every
   design requested twice in a row, so a population of [requests / 2]
   designs yields an exactly 50% duplicate mix (a smaller population
   raises the duplicate rate and the slices overlap). *)
let serve_load ?(clients = 4) ~requests server designs =
  let xmls = Array.of_list (List.map design_one_line designs) in
  let n = Array.length xmls in
  let per = max 1 (requests / clients) in
  let total = clients * per in
  let oks = Atomic.make 0
  and cached = Atomic.make 0
  and rejected = Atomic.make 0
  and errors = Atomic.make 0 in
  let latencies = Array.make total 0. in
  let t0 = Unix.gettimeofday () in
  let worker c =
    for i = 0 to per - 1 do
      let line =
        Printf.sprintf "SOLVE client=bench%d inline:%s" c
          xmls.(((c * (per / 2)) + (i / 2)) mod n)
      in
      let s = Unix.gettimeofday () in
      let reply = Prserve.Server.handle_line server line in
      latencies.((c * per) + i) <- (Unix.gettimeofday () -. s) *. 1000.;
      if str_starts "OK {" reply then begin
        Atomic.incr oks;
        if str_contains reply "\"cached\":true" then Atomic.incr cached
      end
      else if str_starts "REJECT {" reply then Atomic.incr rejected
      else Atomic.incr errors
    done
  in
  let threads = List.init clients (fun c -> Thread.create worker c) in
  List.iter Thread.join threads;
  let wall = Unix.gettimeofday () -. t0 in
  Array.sort compare latencies;
  let pct p =
    latencies.(min (total - 1) (int_of_float (p *. float_of_int total)))
  in
  let cache = Prserve.Server.cache server in
  let hits = Prserve.Cache.hits cache and misses = Prserve.Cache.misses cache in
  { sl_requests = total;
    sl_ok = Atomic.get oks;
    sl_cached = Atomic.get cached;
    sl_rejected = Atomic.get rejected;
    sl_errors = Atomic.get errors;
    sl_wall_s = wall;
    sl_qps = (if wall > 0. then float_of_int total /. wall else 0.);
    sl_p50_ms = pct 0.5;
    sl_p99_ms = pct 0.99;
    sl_hit_rate =
      (if hits + misses = 0 then 0.
       else float_of_int hits /. float_of_int (hits + misses)) }

let serve_config ?(jobs = max 2 (min 4 (Par.recommended_jobs ()))) tele =
  { (Prserve.Server.default_config ~telemetry:tele ()) with
    Prserve.Server.jobs }

let serve_server config =
  match Prserve.Server.create config with
  | Ok s -> s
  | Error m ->
    Printf.printf "BENCH FAILED: prserve create: %s\n" m;
    exit 1

(* Prserve soak (the acceptance experiment): >= 1000 requests from
   concurrent clients, ~50% duplicates, zero crashes, cache hit rate
   above 0.4, and cached replies cross-checked against fresh verified
   solves.  PRPART_SOAK_REQUESTS scales the load. *)
let serve_soak () =
  section "Prserve soak: concurrent duplicate-heavy load";
  let fail fmt =
    Printf.ksprintf
      (fun m ->
        Printf.printf "SERVE SOAK FAILED: %s\n" m;
        exit 1)
      fmt
  in
  let requests =
    match Sys.getenv_opt "PRPART_SOAK_REQUESTS" with
    | Some v ->
      (match int_of_string_opt v with Some n when n > 0 -> n | _ -> 1000)
    | None -> 1000
  in
  let tele = Prtelemetry.create Prtelemetry.Sink.null in
  (* The soak measures sustained crash-free serving, so size the cache
     to the unique population and keep the shed thresholds above the
     healthy queue wait; forced overload is exercised separately (the
     test suite pins the shed ladder deterministically). *)
  let config =
    { (serve_config tele) with
      Prserve.Server.cache_capacity = max 256 requests;
      shed_thresholds_ms = [| 200.; 1000.; 5000. |] }
  in
  let server = serve_server config in
  let designs = serve_designs ~count:(max 8 (requests / 2)) () in
  let stats = serve_load ~clients:4 ~requests server designs in
  (* Sampled reply validation: any design that made it into the cache
     was solved clean at level 0, so its signature must match a fresh,
     independently verified solve. *)
  let fingerprint = Prserve.Server.config_fingerprint config in
  let cache = Prserve.Server.cache server in
  let checked = ref 0 in
  List.iteri
    (fun i d ->
      if i < 3 then begin
        let key =
          Prserve.Cache.key ~config:fingerprint
            ~design_text:(Prdesign.Design_xml.to_string d)
        in
        match Prserve.Cache.find cache ~key with
        | None -> ()
        | Some e -> (
          match
            Prcore.Engine.solve ~verify:true
              ~target:config.Prserve.Server.target d
          with
          | Error m -> fail "verified re-solve of %s: %s" e.Prserve.Cache.design m
          | Ok o ->
            incr checked;
            let fresh =
              Bitgen.Crc32.hex_digest
                (Prcore.Memo.scheme_signature o.Prcore.Engine.scheme)
            in
            if fresh <> e.Prserve.Cache.signature then
              fail "cached %s signature %s != fresh verified %s"
                e.Prserve.Cache.design e.Prserve.Cache.signature fresh)
      end)
    designs;
  Prserve.Server.drain server;
  Printf.printf
    "soak: %d requests, %d ok (%d cached), %d rejected, %d errors\n"
    stats.sl_requests stats.sl_ok stats.sl_cached stats.sl_rejected
    stats.sl_errors;
  Printf.printf
    "soak: %.1f req/s, p50 %.2f ms, p99 %.2f ms, hit rate %.2f, %d \
     replies cross-checked against verified solves\n"
    stats.sl_qps stats.sl_p50_ms stats.sl_p99_ms stats.sl_hit_rate !checked;
  if stats.sl_errors > 0 then fail "%d ERR replies (crashes)" stats.sl_errors;
  if stats.sl_ok + stats.sl_rejected <> stats.sl_requests then
    fail "replies do not account for every request";
  if stats.sl_hit_rate <= 0.4 then
    fail "cache hit rate %.2f <= 0.4" stats.sl_hit_rate;
  Printf.printf "prserve soak OK\n"

(* Prfleet chaos harness: a supervised fleet of real `prpart serve`
   processes sharing one on-disk cache, driven through the
   fault-tolerant client while seeded chaos kills replicas mid-solve
   and mid-cache-write, tears cache files, resets connections and
   delays replies.  The gate is absolute: every request must come back
   and every reply must carry the independently solved signature.
   Shared by the [chaos] acceptance experiment, the bench-json "chaos"
   section and the --quick smoke. *)

let fleet_prpart =
  lazy
    (let candidates =
       [ Filename.concat
           (Filename.dirname Sys.executable_name)
           (Filename.concat ".." (Filename.concat "bin" "prpart.exe"));
         Filename.concat (Filename.concat ".." "bin") "prpart.exe";
         Filename.concat
           (Filename.concat (Filename.concat "_build" "default") "bin")
           "prpart.exe" ]
     in
     match List.find_opt Sys.file_exists candidates with
     | Some path -> path
     | None -> List.hd candidates)

let fleet_dir_seq = ref 0

let fleet_temp_dir () =
  incr fleet_dir_seq;
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "prfleet-bench-%d-%d" (Unix.getpid ()) !fleet_dir_seq)
  in
  Unix.mkdir path 0o700;
  path

let rec fleet_rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter
      (fun entry -> fleet_rm_rf (Filename.concat path entry))
      (Sys.readdir path);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

(* Incarnation 0 carries the kill schedule; respawns keep only benign
   latency chaos, so kill loops are bounded by construction and the
   restart budget is spent on scheduled faults, not a poisoned flag.
   Replica 0 dies mid-solve, replica 1 dies mid-cache-write (leaving a
   stale lockfile and a torn temp file for its peers to take over),
   replica 2 tears a cache entry in place. *)
let fleet_chaos_spec i ~incarnation =
  if incarnation > 0 then
    Printf.sprintf "seed=%d,slow-reply=0.05,slow-ms=10,max-faults=20"
      (900 + i)
  else
    match i mod 3 with
    | 0 ->
      "seed=101,kill-solve@1,conn-reset=0.05,slow-reply=0.05,slow-ms=20,\
       max-faults=40"
    | 1 ->
      "seed=202,kill-cache-write@0,conn-reset=0.05,slow-reply=0.05,\
       slow-ms=20,max-faults=40"
    | _ ->
      "seed=303,torn-cache-write@1,conn-reset=0.08,slow-reply=0.08,\
       slow-ms=20,max-faults=40"

(* High shed thresholds: elevated shed levels solve under a tighter
   budget, whose (correct but degraded) answer would not match the
   full-effort oracle signature.  The chaos gate is about lost and
   wrong replies, not overload policy — the shed ladder has its own
   deterministic tests. *)
let fleet_shed_thresholds = "5000,20000,60000"

type chaos_stats = {
  cs_requests : int;
  cs_ok : int;
  cs_cached : int;
  cs_lost : int;
  cs_wrong : int;
  cs_retries : int;
  cs_failovers : int;
  cs_restarts : int;
  cs_gave_up : bool;
  cs_all_healthy : bool;
  cs_shared_hit : bool;
  cs_wall_s : float;
  cs_qps : float;
}

let chaos_fleet_run ?(replicas = 3) ?(clients = 4) ~requests () =
  let fail fmt =
    Printf.ksprintf
      (fun m ->
        Printf.printf "CHAOS FAILED: %s\n" m;
        exit 1)
      fmt
  in
  let prpart = Lazy.force fleet_prpart in
  if not (Sys.file_exists prpart) then
    fail "prpart binary not found (looked for %s)" prpart;
  let dir = fleet_temp_dir () in
  let cache_dir = Filename.concat dir "cache" in
  let sock i = Filename.concat dir (Printf.sprintf "r%d.sock" i) in
  (* The request mix must solve on the replicas' fixed device; the
     fresh local solve doubles as the per-design reply oracle. *)
  let target = Prcore.Engine.Fixed (Fpga.Device.find_exn "FX70T") in
  let designs =
    List.filter_map
      (fun d ->
        match Prcore.Engine.solve ~target d with
        | Error _ -> None
        | Ok o ->
          Some
            ( design_one_line d,
              Bitgen.Crc32.hex_digest
                (Prcore.Memo.scheme_signature o.Prcore.Engine.scheme) ))
      (serve_designs ~count:12 ())
  in
  if List.length designs < 2 then fail "not enough FX70T-solvable designs";
  let designs = Array.of_list designs in
  let n = Array.length designs in
  let replica_argv i ~incarnation =
    [| prpart; "serve"; "--socket"; sock i; "--device"; "FX70T";
       "--no-deadline"; "--jobs"; "2"; "--shed-thresholds";
       fleet_shed_thresholds; "--shared-cache"; cache_dir; "--chaos";
       fleet_chaos_spec i ~incarnation |]
  in
  let specs =
    List.init replicas (fun i ->
        { Prserve.Supervisor.name = Printf.sprintf "r%d" i;
          address = Prserve.Endpoint.Unix_path (sock i);
          argv = replica_argv i })
  in
  let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let config =
    { (Prserve.Supervisor.default_config
         ~telemetry:(Prtelemetry.create Prtelemetry.Sink.null)
         ())
      with
      Prserve.Supervisor.restart_limit = 8;
      backoff_ms = 50.;
      max_backoff_ms = 500.;
      stdio = Some null }
  in
  let sup =
    match Prserve.Supervisor.start ~config specs with
    | Ok s -> s
    | Error m -> fail "fleet start: %s" m
  in
  (match Prserve.Supervisor.await_healthy ~timeout_s:30. sup with
   | Ok () -> ()
   | Error m -> fail "fleet never became healthy: %s" m);
  let endpoints =
    List.init replicas (fun i -> Prserve.Endpoint.Unix_path (sock i))
  in
  let policy =
    { Prserve.Client.default_policy with
      Prserve.Client.deadline_ms = Some 60_000.;
      retry =
        { Prfault.Recovery.max_attempts = 10;
          base_backoff_s = 0.02;
          backoff_multiplier = 2.;
          max_backoff_s = 0.4;
          jitter = 0.25;
          transition_budget_s = None };
      breaker_cooldown_ms = 200. }
  in
  let per = max 1 (requests / clients) in
  let total = clients * per in
  let oks = Atomic.make 0
  and cached = Atomic.make 0
  and lost = Atomic.make 0
  and wrong = Atomic.make 0
  and retries = Atomic.make 0
  and failovers = Atomic.make 0 in
  let t0 = Unix.gettimeofday () in
  let worker c =
    (* Rotate the endpoint list per client so the sticky first choice
       spreads load across the fleet instead of dog-piling replica 0,
       and every kill schedule sees traffic. *)
    let rotated =
      List.init replicas (fun k -> List.nth endpoints ((c + k) mod replicas))
    in
    let client =
      match
        Prserve.Client.create ~policy ~seed:(1000 + c)
          ~telemetry:(Prtelemetry.create Prtelemetry.Sink.null)
          rotated
      with
      | Ok cl -> cl
      | Error m -> fail "client %d: %s" c m
    in
    for i = 0 to per - 1 do
      let xml, oracle = designs.(((c * (per / 2)) + (i / 2)) mod n) in
      match
        Prserve.Client.solve_inline client
          ~client:(Printf.sprintf "chaos%d" c)
          ~design_xml:xml ()
      with
      | Ok s ->
        Atomic.incr oks;
        if s.Prserve.Protocol.cached then Atomic.incr cached;
        if s.Prserve.Protocol.signature <> oracle then Atomic.incr wrong
      | Error _ -> Atomic.incr lost
    done;
    ignore (Atomic.fetch_and_add retries (Prserve.Client.retries client));
    ignore (Atomic.fetch_and_add failovers (Prserve.Client.failovers client));
    Prserve.Client.close client
  in
  let threads = List.init clients (fun c -> Thread.create worker c) in
  List.iter Thread.join threads;
  let wall = Unix.gettimeofday () -. t0 in
  (* Both kill schedules are deterministic, so every run loses at least
     one replica; give the monitor a bounded window to reap the exit
     and respawn every casualty before reading the fleet state. *)
  let deadline = Unix.gettimeofday () +. 10. in
  let all_healthy () =
    List.for_all
      (fun s -> s.Prserve.Supervisor.s_phase = Prserve.Supervisor.Healthy)
      (Prserve.Supervisor.statuses sup)
  in
  let rec settle () =
    if Prserve.Supervisor.restarts sup >= 1 && all_healthy () then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Thread.delay 0.05;
      settle ()
    end
  in
  let settled = settle () in
  let restarts = Prserve.Supervisor.restarts sup in
  let gave_up = Prserve.Supervisor.gave_up sup in
  Prserve.Supervisor.stop sup;
  (* Cold-replica coordination check: a fresh replica on the same cache
     directory (no chaos) must serve a design its peers solved without
     re-solving it, bit-identical to the oracle. *)
  let cold_sock = Filename.concat dir "cold.sock" in
  let cold_argv =
    [| prpart; "serve"; "--socket"; cold_sock; "--device"; "FX70T";
       "--no-deadline"; "--jobs"; "2"; "--shed-thresholds";
       fleet_shed_thresholds; "--shared-cache"; cache_dir |]
  in
  let cold_pid =
    Unix.create_process cold_argv.(0) cold_argv Unix.stdin null null
  in
  let startup_retry =
    { Prfault.Recovery.max_attempts = 100;
      base_backoff_s = 0.05;
      backoff_multiplier = 1.;
      max_backoff_s = 0.05;
      jitter = 0.;
      transition_budget_s = None }
  in
  let shared_hit =
    match
      Prserve.Endpoint.connect ~retry:startup_retry
        (Prserve.Endpoint.Unix_path cold_sock)
    with
    | Error _ -> false
    | Ok conn ->
      let xml, oracle = designs.(0) in
      let hit =
        match
          Prserve.Endpoint.request conn
            (Printf.sprintf "SOLVE client=cold inline:%s" xml)
        with
        | Error _ -> false
        | Ok reply -> (
          match Prserve.Protocol.parse_reply reply with
          | Ok (Prserve.Protocol.R_solved s) ->
            s.Prserve.Protocol.cached
            && s.Prserve.Protocol.signature = oracle
          | _ -> false)
      in
      ignore (Prserve.Endpoint.request conn "SHUTDOWN");
      Prserve.Endpoint.close_client conn;
      hit
  in
  (try Unix.kill cold_pid Sys.sigterm with Unix.Unix_error _ -> ());
  (try ignore (Unix.waitpid [] cold_pid) with Unix.Unix_error _ -> ());
  Unix.close null;
  fleet_rm_rf dir;
  { cs_requests = total;
    cs_ok = Atomic.get oks;
    cs_cached = Atomic.get cached;
    cs_lost = Atomic.get lost;
    cs_wrong = Atomic.get wrong;
    cs_retries = Atomic.get retries;
    cs_failovers = Atomic.get failovers;
    cs_restarts = restarts;
    cs_gave_up = gave_up;
    cs_all_healthy = settled;
    cs_shared_hit = shared_hit;
    cs_wall_s = wall;
    cs_qps = (if wall > 0. then float_of_int total /. wall else 0.) }

let chaos_report st =
  Printf.printf
    "chaos: %d requests, %d ok (%d cached), %d lost, %d wrong, %d \
     retries, %d failovers\n"
    st.cs_requests st.cs_ok st.cs_cached st.cs_lost st.cs_wrong
    st.cs_retries st.cs_failovers;
  Printf.printf
    "chaos: %d replica restarts (gave_up=%b, all healthy=%b), shared \
     cold hit=%b, %.1f req/s over %.1fs\n"
    st.cs_restarts st.cs_gave_up st.cs_all_healthy st.cs_shared_hit
    st.cs_qps st.cs_wall_s

let chaos_check ~what st =
  let fail fmt =
    Printf.ksprintf
      (fun m ->
        Printf.printf "%s FAILED: %s\n" what m;
        exit 1)
      fmt
  in
  if st.cs_lost > 0 then fail "%d lost replies" st.cs_lost;
  if st.cs_wrong > 0 then
    fail "%d replies with a wrong signature" st.cs_wrong;
  if st.cs_ok <> st.cs_requests then
    fail "replies do not account for every request (%d/%d)" st.cs_ok
      st.cs_requests;
  if st.cs_restarts < 1 then
    fail "scheduled kills produced no supervisor restart";
  if st.cs_gave_up then fail "a replica exhausted its restart budget";
  if not st.cs_all_healthy then
    fail "fleet not fully healthy after the soak";
  if not st.cs_shared_hit then
    fail "cold replica did not serve a peer-written cache entry"

(* Prfleet chaos (the acceptance experiment): >= 500 requests against a
   supervised 3-replica fleet under seeded kills (mid-solve and
   mid-cache-write), torn cache writes, connection resets and slow
   replies — zero lost replies, zero wrong replies, every casualty
   restarted within budget, and a cold replica serving a peer-written
   cache hit.  PRPART_CHAOS_REQUESTS scales the load. *)
let chaos_experiment () =
  section "Prfleet chaos: supervised replicas under seeded faults";
  let requests =
    match Sys.getenv_opt "PRPART_CHAOS_REQUESTS" with
    | Some v ->
      (match int_of_string_opt v with Some n when n > 0 -> n | _ -> 500)
    | None -> 500
  in
  let st = chaos_fleet_run ~replicas:3 ~clients:4 ~requests () in
  chaos_report st;
  chaos_check ~what:"CHAOS" st;
  if st.cs_requests < 500 then
    Printf.printf
      "note: %d requests is below the 500-request acceptance soak \
       (PRPART_CHAOS_REQUESTS)\n"
      st.cs_requests;
  Printf.printf "prfleet chaos OK\n"

(* Prfleet smoke (runs under --quick, so `dune runtest` gates on it):
   a scaled-down chaos soak — two replicas, both with kill schedules,
   same zero-loss gates. *)
let chaos_smoke () =
  section "Prfleet smoke: 2-replica chaos soak";
  let st = chaos_fleet_run ~replicas:2 ~clients:2 ~requests:24 () in
  chaos_report st;
  chaos_check ~what:"PRFLEET SMOKE" st;
  Printf.printf "prfleet smoke OK\n"

(* Placement-aware partitioning vs the post-hoc feedback loop, on the
   fragmentation stress design: the unaware flow picks the
   cheapest-by-frames scheme, fails to floorplan it and escalates
   devices; the aware flow pays the placeability penalty up front and
   lands oracle-clean on the smaller part. Everything here is
   deterministic, so the comparison doubles as an invariant check. *)
type floorplan_result = {
  fl_unaware_device : string;
  fl_aware_device : string;
  fl_unaware_escalations : int;
  fl_aware_escalations : int;
  fl_penalty_evals : int;
  fl_aware_penalty : int;
  fl_ms : float;
  fl_oracle_clean : bool;
  fl_identical : bool;
}

let floorplan_run () =
  let design = Prdesign.Design_library.fragmented_filter in
  let device = Fpga.Device.find_exn "LX30" in
  let target = Prcore.Engine.Fixed device in
  let run ~aware ~jobs () =
    let tele = Prtelemetry.create Prtelemetry.Sink.null in
    let options =
      { Flow.Tool_flow.default_options with
        placement_aware = aware;
        verify = true;
        telemetry = tele;
        jobs }
    in
    match Flow.Tool_flow.run ~options ~target design with
    | Ok r -> (r, tele)
    | Error m ->
      Printf.printf "BENCH FAILED: floorplan flow (%s): %s\n"
        (if aware then "aware" else "unaware")
        m;
      exit 1
  in
  let unaware, _ = run ~aware:false ~jobs:1 () in
  let reps = 5 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to reps - 1 do
    ignore (run ~aware:true ~jobs:1 ())
  done;
  let aware, tele = run ~aware:true ~jobs:1 () in
  let fl_ms = (Unix.gettimeofday () -. t0) *. 1000. /. float_of_int reps in
  let key (r : Flow.Tool_flow.report) =
    (Prcore.Scheme.describe r.outcome.Prcore.Engine.scheme,
     r.outcome.Prcore.Engine.placement_penalty,
     r.device.Fpga.Device.name,
     r.floorplan_escalations)
  in
  let fl_identical =
    List.for_all
      (fun jobs -> key (fst (run ~aware:true ~jobs ())) = key aware)
      [ 2; 4 ]
  in
  let fl_oracle_clean =
    match aware.Flow.Tool_flow.diagnostics with
    | Some diags -> Prverify.Diagnostic.ok diags
    | None -> false
  in
  { fl_unaware_device = unaware.Flow.Tool_flow.device.Fpga.Device.name;
    fl_aware_device = aware.Flow.Tool_flow.device.Fpga.Device.name;
    fl_unaware_escalations = unaware.Flow.Tool_flow.floorplan_escalations;
    fl_aware_escalations = aware.Flow.Tool_flow.floorplan_escalations;
    fl_penalty_evals = Prtelemetry.counter_value tele "core.placement_evals";
    fl_aware_penalty =
      Option.value ~default:(-1)
        aware.Flow.Tool_flow.outcome.Prcore.Engine.placement_penalty;
    fl_ms;
    fl_oracle_clean;
    fl_identical }

let floorplan_check r =
  let won =
    r.fl_aware_escalations < r.fl_unaware_escalations
    || Fpga.Device.compare_capacity
         (Fpga.Device.find_exn r.fl_aware_device)
         (Fpga.Device.find_exn r.fl_unaware_device)
       < 0
  in
  if not (won && r.fl_oracle_clean && r.fl_identical) then begin
    Printf.printf
      "BENCH FAILED: placement-aware flow (won=%b, oracle=%b, identical=%b)\n"
      won r.fl_oracle_clean r.fl_identical;
    exit 1
  end

let floorplan_experiment () =
  section "Placement-aware search vs post-hoc floorplan feedback";
  let r = floorplan_run () in
  Printf.printf "design: fragmented-filter, requested device XC5VLX30\n";
  Printf.printf "unaware: %s after %d escalation(s)\n" r.fl_unaware_device
    r.fl_unaware_escalations;
  Printf.printf
    "aware:   %s after %d escalation(s), penalty %d, %d penalty evals\n"
    r.fl_aware_device r.fl_aware_escalations r.fl_aware_penalty
    r.fl_penalty_evals;
  Printf.printf "aware solve: %.1f ms/run, oracle_clean=%b, jobs 1/2/4 \
                 identical=%b\n"
    r.fl_ms r.fl_oracle_clean r.fl_identical;
  floorplan_check r

(* Floorplan smoke (runs under --quick, so `dune runtest` gates on it):
   the aware flow must beat the post-hoc loop on the stress design,
   stay oracle-clean and stay bit-identical across worker counts. *)
let floorplan_smoke () =
  section "Floorplan smoke: placement-aware beats post-hoc feedback";
  let r = floorplan_run () in
  floorplan_check r;
  Printf.printf
    "aware %s (%d escalations) vs unaware %s (%d escalations) [OK]\n"
    r.fl_aware_device r.fl_aware_escalations r.fl_unaware_device
    r.fl_unaware_escalations

(* Machine-readable performance artefact (BENCH_core.json): allocator
   move throughput, engine solve latency (Bechamel OLS), sweep
   throughput sequential vs parallel, and the evaluation-cache hit
   rate. *)
let bench_json () =
  section "Prspeed benchmarks -> BENCH_core.json";
  let receiver = Prdesign.Design_library.video_receiver in
  let target =
    Prcore.Engine.Budget Prdesign.Design_library.case_study_budget
  in
  (* Engine solve latency, OLS-estimated. *)
  let solve_ns =
    bechamel_ns
      (Bechamel.Test.make ~name:"engine-solve"
         (Bechamel.Staged.stage (fun () ->
              ignore (Prcore.Engine.solve ~target receiver))))
  in
  (* Allocator move throughput and cache behaviour: repeat the
     case-study solve on one counting handle and read the counters
     back. *)
  let tele = Prtelemetry.create Prtelemetry.Sink.null in
  let reps = 20 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to reps do
    ignore (Prcore.Engine.solve ~telemetry:tele ~target receiver)
  done;
  let solve_wall = Unix.gettimeofday () -. t0 in
  let counter = Prtelemetry.counter_value tele in
  let moves = counter "alloc.moves_evaluated" in
  let delta_evals = counter "perf.delta_evals" in
  let hits = counter "perf.cache_hits" in
  let misses = counter "perf.cache_misses" in
  let hit_rate =
    if hits + misses = 0 then 0.
    else float_of_int hits /. float_of_int (hits + misses)
  in
  let moves_per_sec =
    if solve_wall > 0. then float_of_int moves /. solve_wall else 0.
  in
  (* Sweep throughput across a host_domains scaling matrix. The levels
     1/2/4/8 are clamped to the host: [Sweep.run] itself clamps [jobs]
     to {!Par.recommended_jobs}, so an oversubscribed level runs the
     same configuration as the largest level the host supports. Each
     level is timed twice (min of the two) after a shared warm-up so
     allocator warm-up does not bias the sequential baseline. *)
  let sweep_n = 40 in
  let recommended = Par.recommended_jobs () in
  let levels =
    List.sort_uniq compare
      (List.map (fun j -> min j (max 2 recommended)) [ 1; 2; 4; 8 ])
  in
  let time_sweep jobs =
    let t0 = Unix.gettimeofday () in
    let rows = Experiments.Sweep.run ~count:sweep_n ~jobs () in
    (rows, Unix.gettimeofday () -. t0)
  in
  ignore (time_sweep 1);
  let timed =
    List.map
      (fun jobs ->
        let rows, t1 = time_sweep jobs in
        let _, t2 = time_sweep jobs in
        (jobs, rows, Float.min t1 t2))
      levels
  in
  let rows_seq, seq_s =
    match timed with
    | (1, rows, s) :: _ -> (rows, s)
    | _ -> assert false
  in
  let identical =
    List.for_all (fun (_, rows, _) -> rows = rows_seq) timed
  in
  if not identical then begin
    Printf.printf "BENCH FAILED: parallel sweep diverged from sequential\n";
    exit 1
  end;
  (* Headline speedup at jobs=2 (the regression-tracked metric). When
     the host clamps both levels to one domain the two timings measure
     the identical sequential configuration, so the speedup is 1 by
     construction and reporting the timing jitter would be noise. *)
  let seconds_at jobs =
    match List.find_opt (fun (j, _, _) -> j = jobs) timed with
    | Some (_, _, s) -> s
    | None -> seq_s
  in
  let speedup_at jobs =
    if min jobs recommended <= 1 then 1.
    else begin
      let s = seconds_at jobs in
      if s > 0. then seq_s /. s else 0.
    end
  in
  let jobs = 2 in
  let par_s = seconds_at jobs in
  (* Guard: anytime degradation under an eval cap, plus the crash
     recovery round trip. *)
  let guard_cap = 700 in
  let capped () =
    match
      Prcore.Engine.solve
        ~budget:(Prguard.Budget.make ~max_evals:guard_cap ())
        ~target receiver
    with
    | Ok o -> o
    | Error m ->
      Printf.printf "BENCH FAILED: eval-capped solve: %s\n" m;
      exit 1
  in
  let g1 = capped () in
  let g2 = capped () in
  let guard_deterministic =
    g1.Prcore.Engine.evaluation = g2.Prcore.Engine.evaluation
    && g1.Prcore.Engine.cost_evaluations = g2.Prcore.Engine.cost_evaluations
  in
  let guard_feasible =
    Prcore.Cost.fits g1.Prcore.Engine.evaluation
      ~budget:g1.Prcore.Engine.budget
  in
  let guard_verdict = g1.Prcore.Engine.degraded in
  let recovery_ok = guard_recovery_roundtrip () in
  (* Prscale: the huge-design multilevel solve (latency, V-cycle
     statistics and quality gap are regression-tracked). *)
  let ml = multilevel_huge_run () in
  if not (ml.mr_feasible && ml.mr_oracle_clean) then begin
    Printf.printf "BENCH FAILED: multilevel huge solve invariants violated\n";
    exit 1
  end;
  let ml_gap = multilevel_gap_vs_anneal () in
  (* Placement-aware flow vs post-hoc feedback: escalations avoided and
     the aware solve latency are regression-tracked. *)
  let fl = floorplan_run () in
  floorplan_check fl;
  (* Prserve daemon throughput under a duplicate-heavy concurrent
     load; hit rate and p99 latency are regression-tracked. *)
  let serve_stats =
    let tele_s = Prtelemetry.create Prtelemetry.Sink.null in
    (* Same stabilised configuration as the soak: thresholds above the
       healthy queue wait, so the tracked hit rate measures the cache,
       not shed-level jitter. *)
    let server =
      serve_server
        { (serve_config tele_s) with
          Prserve.Server.shed_thresholds_ms = [| 200.; 1000.; 5000. |] }
    in
    let stats =
      serve_load ~clients:4 ~requests:200 server (serve_designs ~count:100 ())
    in
    Prserve.Server.drain server;
    stats
  in
  (* Prfleet chaos soak, scaled down from the acceptance experiment:
     real replica processes, seeded kills, shared cache.  The tracked
     metrics are the zero-tolerance correctness counters; throughput
     under chaos is reported but not regression-gated (restart and
     backoff timing dominate it). *)
  let chaos_stats = chaos_fleet_run ~replicas:3 ~clients:3 ~requests:120 () in
  let json =
    Prtelemetry.Json.(
      Obj
        [ ("schema", String "prpart-bench-core/1");
          ("host_domains", Int (Par.recommended_jobs ()));
          ( "engine_solve",
            Obj
              [ ("design", String "video-receiver (case study)");
                ("ns_per_run", Float solve_ns);
                ("ms_per_run", Float (solve_ns /. 1e6)) ] );
          ( "allocator",
            Obj
              [ ("solves", Int reps);
                ("wall_seconds", Float solve_wall);
                ("moves_evaluated", Int moves);
                ("moves_per_sec", Float moves_per_sec);
                ("delta_evals", Int delta_evals) ] );
          ( "cache",
            Obj
              [ ("hits", Int hits);
                ("misses", Int misses);
                ("hit_rate", Float hit_rate) ] );
          ( "sweep",
            Obj
              [ ("designs", Int sweep_n);
                ("rows", Int (List.length rows_seq));
                ("granularity", String "contiguous-blocks");
                ("sequential_seconds", Float seq_s);
                ("parallel_jobs", Int jobs);
                ("parallel_seconds", Float par_s);
                ("speedup", Float (speedup_at jobs));
                ("bit_identical", Bool identical);
                ( "scaling",
                  List
                    (List.map
                       (fun (j, _, s) ->
                         Obj
                           [ ("jobs", Int j);
                             ("effective_jobs", Int (min j recommended));
                             ("seconds", Float s);
                             ("speedup", Float (speedup_at j)) ])
                       timed) ) ] );
          ( "guard",
            Obj
              [ ("eval_cap", Int guard_cap);
                ("deterministic", Bool guard_deterministic);
                ("feasible", Bool guard_feasible);
                ("degraded", Bool guard_verdict.Prguard.Budget.degraded);
                ( "reason",
                  String
                    (Prguard.Budget.reason_name
                       guard_verdict.Prguard.Budget.reason) );
                ("evals_used", Int guard_verdict.Prguard.Budget.evals_used);
                ( "total_frames",
                  Int g1.Prcore.Engine.evaluation.Prcore.Cost.total_frames );
                ("recovery_roundtrip", Bool recovery_ok) ] );
          ( "multilevel",
            Obj
              [ ( "design",
                  String
                    (Printf.sprintf "synth huge class (%d modules, seed %d)"
                       huge_modules huge_seed) );
                ("modules", Int huge_modules);
                ("ms_per_run", Float ml.mr_ms);
                ("total_frames", Int ml.mr_total);
                ("feasible", Bool ml.mr_feasible);
                ("oracle_clean", Bool ml.mr_oracle_clean);
                ("levels", Int ml.mr_stats.Prcore.Multilevel.levels);
                ("merges", Int ml.mr_stats.Prcore.Multilevel.merges);
                ("refine_passes", Int ml.mr_stats.Prcore.Multilevel.passes);
                ("refine_moves", Int ml.mr_stats.Prcore.Multilevel.moves);
                ( "gap_vs_anneal_pct",
                  match ml_gap with Some g -> Float g | None -> Null ) ] );
          ( "floorplan",
            Obj
              [ ("design", String "fragmented-filter on XC5VLX30");
                ("unaware_device", String fl.fl_unaware_device);
                ("aware_device", String fl.fl_aware_device);
                ("unaware_escalations", Int fl.fl_unaware_escalations);
                ("aware_escalations", Int fl.fl_aware_escalations);
                ( "escalations_avoided",
                  Int (fl.fl_unaware_escalations - fl.fl_aware_escalations) );
                ("placement_penalty", Int fl.fl_aware_penalty);
                ("placement_penalty_evals", Int fl.fl_penalty_evals);
                ("ms_per_run", Float fl.fl_ms);
                ("oracle_clean", Bool fl.fl_oracle_clean);
                ("bit_identical", Bool fl.fl_identical) ] );
          ( "serve",
            Obj
              [ ("requests", Int serve_stats.sl_requests);
                ("wall_seconds", Float serve_stats.sl_wall_s);
                ("qps", Float serve_stats.sl_qps);
                ("p50_ms", Float serve_stats.sl_p50_ms);
                ("p99_ms", Float serve_stats.sl_p99_ms);
                ("hit_rate", Float serve_stats.sl_hit_rate);
                ("cached_replies", Int serve_stats.sl_cached);
                ("rejected", Int serve_stats.sl_rejected);
                ("errors", Int serve_stats.sl_errors) ] );
          ( "chaos",
            Obj
              [ ("replicas", Int 3);
                ("requests", Int chaos_stats.cs_requests);
                ("ok", Int chaos_stats.cs_ok);
                ("cached_replies", Int chaos_stats.cs_cached);
                ("lost_replies", Int chaos_stats.cs_lost);
                ("wrong_replies", Int chaos_stats.cs_wrong);
                ("retries", Int chaos_stats.cs_retries);
                ("failovers", Int chaos_stats.cs_failovers);
                ("replica_restarts", Int chaos_stats.cs_restarts);
                ("gave_up", Bool chaos_stats.cs_gave_up);
                ("shared_cache_hit", Bool chaos_stats.cs_shared_hit);
                ("wall_s", Float chaos_stats.cs_wall_s);
                ("req_per_s", Float chaos_stats.cs_qps) ] ) ])
  in
  let path = "BENCH_core.json" in
  let oc = open_out path in
  output_string oc (Prtelemetry.Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "engine solve: %.3f ms/run (OLS)\n" (solve_ns /. 1e6);
  Printf.printf "allocator: %.0f moves/sec (%d moves over %d solves)\n"
    moves_per_sec moves reps;
  Printf.printf "cache: %d hits / %d misses (%.1f%% hit rate)\n" hits misses
    (100. *. hit_rate);
  Printf.printf
    "sweep: %d designs, %.2fs sequential vs %.2fs with %d jobs (x%.2f, \
     bit-identical across %s)\n"
    sweep_n seq_s par_s jobs (speedup_at jobs)
    (String.concat "/"
       (List.map (fun (j, _, _) -> string_of_int j) timed));
  Printf.printf
    "guard: cap %d -> %d frames (%s, deterministic=%b, feasible=%b, \
     recovery=%b)\n"
    guard_cap g1.Prcore.Engine.evaluation.Prcore.Cost.total_frames
    (Prguard.Budget.reason_name guard_verdict.Prguard.Budget.reason)
    guard_deterministic guard_feasible recovery_ok;
  if not (guard_deterministic && guard_feasible && recovery_ok) then begin
    Printf.printf "BENCH FAILED: guard invariants violated\n";
    exit 1
  end;
  Printf.printf
    "serve: %.1f req/s over %d requests, p99 %.2f ms, hit rate %.2f \
     (%d rejected, %d errors)\n"
    serve_stats.sl_qps serve_stats.sl_requests serve_stats.sl_p99_ms
    serve_stats.sl_hit_rate serve_stats.sl_rejected serve_stats.sl_errors;
  if serve_stats.sl_errors > 0 then begin
    Printf.printf "BENCH FAILED: serve load produced ERR replies\n";
    exit 1
  end;
  chaos_report chaos_stats;
  chaos_check ~what:"BENCH" chaos_stats;
  Printf.printf
    "multilevel: %d modules in %.0f ms (%d frames, %d passes, %d moves%s)\n"
    huge_modules ml.mr_ms ml.mr_total ml.mr_stats.Prcore.Multilevel.passes
    ml.mr_stats.Prcore.Multilevel.moves
    (match ml_gap with
     | Some g -> Printf.sprintf ", gap vs anneal %+.1f%%" g
     | None -> "");
  Printf.printf
    "floorplan: aware %s (%d escalations) vs unaware %s (%d), %.1f ms/run, \
     %d penalty evals\n"
    fl.fl_aware_device fl.fl_aware_escalations fl.fl_unaware_device
    fl.fl_unaware_escalations fl.fl_ms fl.fl_penalty_evals;
  Printf.printf "wrote %s\n" path;
  (* Regression history: every bench-json run appends its metrics, and
     bench-compare diffs the two most recent entries. *)
  let history_path = "BENCH_history.jsonl" in
  let entry =
    Prtelemetry.Json.(
      Obj
        [ ("schema", String "prpart-bench-history/1");
          ("unix_time", Float (Unix.gettimeofday ()));
          ("sweep_designs", Int sweep_n);
          ("metrics", json) ])
  in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 history_path in
  output_string oc (Prtelemetry.Json.to_string entry);
  output_char oc '\n';
  close_out oc;
  Printf.printf "appended %s\n" history_path

(* bench-compare: diff the two most recent BENCH_history.jsonl entries
   (or the latest entry against PRPART_BENCH_BASELINE, a file holding
   one history entry or bare metrics document) under the Regress
   tolerance rules. Exits 1 on any regression or missing metric; exits
   0 with a notice when there is not yet enough history. *)
let bench_compare () =
  section "bench-compare: latest BENCH metrics vs baseline";
  let fail fmt =
    Printf.ksprintf
      (fun m ->
        Printf.printf "BENCH COMPARE FAILED: %s\n" m;
        exit 1)
      fmt
  in
  let read_lines path =
    let ic = open_in path in
    let rec go acc =
      match input_line ic with
      | line ->
        go (if String.trim line = "" then acc else line :: acc)
      | exception End_of_file ->
        close_in ic;
        List.rev acc
    in
    go []
  in
  (* A history line wraps the metrics; a bare BENCH_core.json is also
     accepted so a pinned baseline can simply be a saved artefact. *)
  let metrics_of ~what line =
    match Prtelemetry.Json.of_string line with
    | Error m -> fail "%s: %s" what m
    | Ok json -> (
      match Prtelemetry.Json.member "metrics" json with
      | Some metrics -> metrics
      | None -> json)
  in
  let history_path = "BENCH_history.jsonl" in
  let history =
    if Sys.file_exists history_path then read_lines history_path else []
  in
  let baseline_override = Sys.getenv_opt "PRPART_BENCH_BASELINE" in
  match (baseline_override, List.rev history) with
  | None, ([] | [ _ ]) ->
    Printf.printf
      "bench-compare: fewer than two entries in %s; run `make bench-json` \
       twice (or pin PRPART_BENCH_BASELINE) to enable the diff\n"
      history_path
  | Some _, [] ->
    Printf.printf
      "bench-compare: no entries in %s; run `make bench-json` first\n"
      history_path
  | baseline_override, latest_line :: rest ->
    let latest = metrics_of ~what:"latest history entry" latest_line in
    let baseline =
      match baseline_override with
      | Some path ->
        if not (Sys.file_exists path) then
          fail "PRPART_BENCH_BASELINE %s does not exist" path
        else begin
          match read_lines path with
          | [] -> fail "PRPART_BENCH_BASELINE %s is empty" path
          | line :: _ -> metrics_of ~what:path line
        end
      | None ->
        metrics_of ~what:"baseline history entry" (List.hd rest)
    in
    let findings = Experiments.Regress.compare ~baseline ~latest () in
    print_string (Experiments.Regress.render findings);
    if Experiments.Regress.regressed findings <> [] then exit 1

(* Prscope smoke (runs under --quick, so `dune runtest` gates on it):
   a traced case-study solve must produce a profile report carrying
   every section the `prpart profile` verb prints, depth-resolved memo
   traffic, a non-empty progress curve, and a Prometheus exposition
   page that passes the structural validator. Exits 1 on violation. *)
let scope_smoke () =
  section "Prscope smoke: profile report + exposition validity";
  let fail fmt =
    Printf.ksprintf
      (fun m ->
        Printf.printf "PRSCOPE SMOKE FAILED: %s\n" m;
        exit 1)
      fmt
  in
  let contains haystack needle =
    let hl = String.length haystack and nl = String.length needle in
    let rec scan i =
      if i + nl > hl then false
      else if String.sub haystack i nl = needle then true
      else scan (i + 1)
    in
    scan 0
  in
  let receiver = Prdesign.Design_library.video_receiver in
  let target =
    Prcore.Engine.Budget Prdesign.Design_library.case_study_budget
  in
  let tele = Prtelemetry.create (Prtelemetry.Sink.memory ()) in
  let outcome =
    match Prcore.Engine.solve ~telemetry:tele ~jobs:2 ~target receiver with
    | Ok o -> o
    | Error m -> fail "traced case-study solve: %s" m
  in
  Prtelemetry.flush tele;
  let report = Prtelemetry.Scope.report tele in
  List.iter
    (fun needle ->
      if not (contains report needle) then
        fail "profile report is missing its %S section" needle)
    [ "span tree"; "hot paths"; "span latency percentiles";
      "memo by candidate-set depth"; "per-domain profile" ];
  let s = outcome.Prcore.Engine.search in
  if s.Prcore.Engine.memo_hits + s.Prcore.Engine.memo_misses <= 0 then
    fail "traced solve recorded no memo traffic";
  if s.Prcore.Engine.progress = [] then
    fail "traced solve recorded no progress curve";
  let page = Prtelemetry.exposition tele in
  (match Prtelemetry.Scope.check_exposition page with
   | Ok () -> ()
   | Error m -> fail "exposition page invalid: %s" m);
  Printf.printf
    "prscope smoke OK (report %d bytes, memo %d/%d, %d progress points, \
     exposition %d bytes valid)\n"
    (String.length report) s.Prcore.Engine.memo_hits
    s.Prcore.Engine.memo_misses
    (List.length s.Prcore.Engine.progress)
    (String.length page)

(* Prserve smoke (runs under --quick, so `dune runtest` gates on it):
   an in-process daemon must answer SOLVE (fresh then cached),
   STATUS, HEALTH and SHUTDOWN, refuse work while draining, and leave
   a structurally valid Prometheus exposition carrying the serve
   counters. Exits 1 on violation. *)
let serve_smoke () =
  section "Prserve smoke: protocol round-trip + exposition validity";
  let fail fmt =
    Printf.ksprintf
      (fun m ->
        Printf.printf "PRSERVE SMOKE FAILED: %s\n" m;
        exit 1)
      fmt
  in
  let tele = Prtelemetry.create Prtelemetry.Sink.null in
  let server = serve_server (serve_config ~jobs:2 tele) in
  let ask line = Prserve.Server.handle_line server line in
  let r1 = ask "SOLVE running-example" in
  if not (str_starts "OK {" r1) then fail "SOLVE: %s" r1;
  if not (str_contains r1 "\"cached\":false") then fail "first solve cached";
  let r2 = ask "SOLVE running-example" in
  if not (str_contains r2 "\"cached\":true") then
    fail "duplicate not served from cache: %s" r2;
  let status = ask "STATUS" in
  if not (str_starts "STATUS {" status && str_contains status "\"cache\":")
  then fail "STATUS: %s" status;
  if ask "HEALTH" <> "HEALTH ok" then fail "HEALTH";
  if ask "SHUTDOWN" <> "BYE" then fail "SHUTDOWN";
  let refused = ask "SOLVE running-example" in
  if not (str_contains refused "draining") then
    fail "draining daemon accepted work: %s" refused;
  Prserve.Server.drain server;
  Prtelemetry.flush tele;
  let page = Prtelemetry.exposition tele in
  (match Prtelemetry.Scope.check_exposition page with
   | Ok () -> ()
   | Error m -> fail "exposition page invalid: %s" m);
  List.iter
    (fun needle ->
      if not (str_contains page needle) then
        fail "exposition is missing %s" needle)
    [ "prpart_serve_requests"; "prpart_serve_cache_hits";
      "prpart_serve_solved" ];
  Printf.printf
    "prserve smoke OK (solve + cached duplicate, status/health/bye, \
     drain refusal, exposition %d bytes valid)\n"
    (String.length page)

(* Bechamel performance suite: one Test.make per regenerated artefact. *)
let perf () =
  section "Performance (Bechamel; the paper's Python took seconds-minutes)";
  let open Bechamel in
  let receiver = Prdesign.Design_library.video_receiver in
  let budget = Prdesign.Design_library.case_study_budget in
  let synth_designs =
    lazy (List.map snd (Synth.Generator.batch ~seed:99 ~count:10 ()))
  in
  let solve design target () =
    match Prcore.Engine.solve ~target design with
    | Ok _ -> ()
    | Error _ -> ()
  in
  let tests =
    [ Test.make ~name:"table1-clustering"
        (Staged.stage (fun () ->
             ignore (Cluster.Agglomerative.run Prdesign.Design_library.running_example)));
      Test.make ~name:"table2-receiver-clustering"
        (Staged.stage (fun () -> ignore (Cluster.Agglomerative.run receiver)));
      Test.make ~name:"table3/4-case-study-solve"
        (Staged.stage (solve receiver (Prcore.Engine.Budget budget)));
      Test.make ~name:"table5-alt-solve"
        (Staged.stage
           (solve Prdesign.Design_library.video_receiver_alt
              (Prcore.Engine.Budget budget)));
      Test.make ~name:"fig7/8/9-sweep-of-10"
        (Staged.stage (fun () ->
             List.iter
               (fun d -> solve d Prcore.Engine.Auto ())
               (Lazy.force synth_designs)));
      Test.make ~name:"baseline-evaluation"
        (Staged.stage (fun () ->
             ignore (Baselines.Schemes.all receiver))) ]
  in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results =
        Benchmark.all cfg instances (Test.make_grouped ~name:"" [ test ])
      in
      let analysed = Analyze.all ols (List.hd instances) results in
      Hashtbl.iter
        (fun name ols_result ->
          let nanos =
            match Analyze.OLS.estimates ols_result with
            | Some [ v ] -> v
            | Some _ | None -> nan
          in
          Printf.printf "%-32s %12.1f ns/run (%8.3f ms)\n" name nanos
            (nanos /. 1e6))
        analysed)
    tests

let experiments =
  [ ("table1", table1);
    ("table2", table2);
    ("table3", table3);
    ("table4", table4);
    ("table5", table5);
    ("fig7", fig7);
    ("fig8", fig8);
    ("fig9", fig9);
    ("stats", stats);
    ("ablate", ablate);
    ("proxy", proxy);
    ("sensitivity", sensitivity);
    ("cache", cache);
    ("arch", arch);
    ("gap", gap);
    ("weighted", weighted);
    ("faults", faults);
    ("verify", verify);
    ("guard", guard);
    ("multilevel", multilevel_experiment);
    ("floorplan", floorplan_experiment);
    ("telemetry", fun () -> telemetry ());
    ("serve", serve_soak);
    ("chaos", chaos_experiment);
    ("perf", perf);
    ("bench-json", bench_json);
    ("bench-compare", bench_compare) ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  if List.mem "--quick" args then begin
    (* Smoke mode for the test suite: the fast experiments only, with a
       reduced telemetry overhead comparison. *)
    table1 ();
    fault_smoke ();
    prspeed_smoke ();
    verify_smoke ();
    guard_smoke ();
    multilevel_smoke ();
    floorplan_smoke ();
    scope_smoke ();
    serve_smoke ();
    chaos_smoke ();
    telemetry ~quick:true ();
    exit 0
  end;
  let requested =
    match args with
    | [ "all" ] -> List.map fst experiments
    | _ :: _ -> args
    | [] -> List.map fst experiments
  in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f -> f ()
      | None ->
        Printf.eprintf "unknown experiment %S; known: %s\n" name
          (String.concat " " (List.map fst experiments));
        exit 2)
    requested
